// Package serving is the reproduction's Resource Central stand-in (§6):
// the production ML system that manages the lifecycle of the Scout's
// models. An offline component trains and snapshots models; a store
// persists the versioned snapshots; an online component serves REST
// predictions, hot-swapping models when a new version lands.
package serving

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"scouts/internal/core"
	"scouts/internal/incident"
	"scouts/internal/ml/forest"
	"scouts/internal/monitoring"
	"scouts/internal/telemetry"
	"scouts/internal/topology"
)

// Model is one versioned, trained Scout.
type Model struct {
	Version   int       `json:"version"`
	Team      string    `json:"team"`
	TrainedAt time.Time `json:"trained_at"`
	Snapshot  []byte    `json:"snapshot"`

	// path is set on store entries registered lazily by LoadStoreOptions:
	// the on-disk file backing this version, read and verified on first
	// access. Empty for models published in-process or loaded eagerly.
	path string
}

// Store keeps versioned model snapshots (the "highly available storage
// system" between the offline and online components).
type Store struct {
	mu     sync.Mutex
	models []Model
	// lazyQuarantined records files that failed verification when a lazy
	// entry was first materialized; see QuarantinedLazy.
	lazyQuarantined []QuarantinedFile

	// Now stamps TrainedAt on published models. It defaults to time.Now;
	// tests inject a fixed clock so snapshot metadata — and therefore
	// serialized store contents — are bit-reproducible.
	Now func() time.Time
}

// NewStore creates an empty store reading the wall clock.
func NewStore() *Store { return &Store{Now: time.Now} }

// Put appends a new model version and returns its version number. The
// snapshot bytes are copied: the store models durable storage, so a caller
// later mutating (or recycling) its buffer must not corrupt the stored
// version. Version numbers continue from the highest stored version —
// a store reloaded around quarantined files may have gaps, and a new
// publish must never reuse a quarantined version's number.
func (st *Store) Put(team string, snapshot []byte) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.Now == nil { // zero-value Stores still work
		st.Now = time.Now
	}
	v := 1
	if n := len(st.models); n > 0 {
		v = st.models[n-1].Version + 1
	}
	st.models = append(st.models, Model{
		Version: v, Team: team, TrainedAt: st.Now().UTC(),
		Snapshot: bytes.Clone(snapshot),
	})
	return v
}

// Latest returns the newest model (ok == false when empty). The returned
// Snapshot is the caller's to keep: it never aliases store-internal bytes.
// A lazily-registered newest version is materialized first; if its file
// turns out to be damaged it is quarantined and the next-newest healthy
// version answers instead.
func (st *Store) Latest() (Model, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for len(st.models) > 0 {
		i := len(st.models) - 1
		if st.materializeLocked(i) {
			return copyModel(st.models[i]), true
		}
	}
	return Model{}, false
}

// Get returns a specific version. Like Latest, the Snapshot is a copy.
// Lookup is by the model's Version field, not position: stores reloaded
// around quarantined files may hold non-contiguous versions. Lazy entries
// are read and verified here, on first access; a damaged file is
// quarantined exactly as an eager load would have, and Get answers false.
func (st *Store) Get(version int) (Model, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for i := range st.models {
		if st.models[i].Version == version {
			if !st.materializeLocked(i) {
				return Model{}, false
			}
			return copyModel(st.models[i]), true
		}
	}
	return Model{}, false
}

// materializeLocked ensures models[i] holds its snapshot bytes, reading
// and verifying the backing file for lazy entries. On verification
// failure the file is quarantined, the entry is dropped from the store,
// and false is returned. Callers hold st.mu.
func (st *Store) materializeLocked(i int) bool {
	m := &st.models[i]
	if m.Snapshot != nil || m.path == "" {
		return m.Snapshot != nil
	}
	loaded, reason := loadModelFile(m.path, m.Version)
	if reason != "" {
		st.lazyQuarantined = append(st.lazyQuarantined, quarantineFile(m.path, reason))
		st.models = append(st.models[:i], st.models[i+1:]...)
		return false
	}
	loaded.path = m.path
	*m = loaded
	return true
}

// QuarantinedLazy drains the quarantine events produced by lazy loads
// since the last call — the deferred complement of LoadReport.Quarantined.
func (st *Store) QuarantinedLazy() []QuarantinedFile {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := st.lazyQuarantined
	st.lazyQuarantined = nil
	return out
}

func copyModel(m Model) Model {
	m.Snapshot = bytes.Clone(m.Snapshot)
	return m
}

// Versions returns the number of stored versions.
func (st *Store) Versions() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.models)
}

// Trainer is the offline component: it trains Scouts and publishes
// snapshots to a store.
type Trainer struct {
	Store *Store
	// Pack publishes scoutpack (binary) snapshots instead of JSON ones.
	// The store and server are format-agnostic — Restore sniffs the
	// leading bytes — but packed snapshots load without re-deriving the
	// forests' flat views, which is what a serving fleet wants.
	Pack bool
}

// TrainAndPublish trains a Scout and stores its snapshot, returning the
// scout and the published version.
func (tr *Trainer) TrainAndPublish(opt core.TrainOptions) (*core.Scout, int, error) {
	scout, err := core.Train(opt)
	if err != nil {
		return nil, 0, err
	}
	var snap []byte
	if tr.Pack {
		snap, err = scout.SnapshotPack()
	} else {
		snap, err = scout.Snapshot()
	}
	if err != nil {
		return nil, 0, err
	}
	return scout, tr.Store.Put(scout.Team(), snap), nil
}

// PredictRequest is the online API's input: the incident as the incident
// manager sees it.
type PredictRequest struct {
	Title      string   `json:"title"`
	Body       string   `json:"body"`
	Components []string `json:"components,omitempty"`
	// Time is the trigger time in model hours. It is required and must be
	// positive: "now" is meaningless for the synthetic substrate, and a
	// zero Time would score the incident against the wrong monitoring
	// window, so missing/negative values are rejected with 400.
	Time float64 `json:"time"`
}

// PredictResponse is the online API's output: the Scout's full answer with
// the §8 operator guidance attached.
type PredictResponse struct {
	Team           string   `json:"team"`
	Verdict        string   `json:"verdict"`
	Responsible    bool     `json:"responsible"`
	Confidence     float64  `json:"confidence"`
	Model          string   `json:"model"`
	Components     []string `json:"components,omitempty"`
	Explanation    string   `json:"explanation"`
	Recommendation string   `json:"recommendation"`
	ModelVersion   int      `json:"model_version"`
	// DataHealth reports the monitoring quality behind the answer; absent
	// for gate verdicts, which never consult monitoring.
	DataHealth *DataHealthInfo `json:"data_health,omitempty"`
}

// DataHealthInfo is the wire form of a prediction's core.DataHealth: how
// much of the answer rests on imputed features, which datasets were dark,
// and how stale the admitted data was.
type DataHealthInfo struct {
	ImputedFraction   float64  `json:"imputed_fraction"`
	DatasetCoverage   float64  `json:"dataset_coverage"`
	DatasetsDown      []string `json:"datasets_down,omitempty"`
	MaxStalenessHours float64  `json:"max_staleness_hours"`
}

func healthInfo(h *core.DataHealth) *DataHealthInfo {
	if h == nil {
		return nil
	}
	return &DataHealthInfo{
		ImputedFraction:   h.ImputedFraction(),
		DatasetCoverage:   h.DatasetCoverage(),
		DatasetsDown:      h.DatasetsDown,
		MaxStalenessHours: h.MaxStaleness,
	}
}

// BatchPredictRequest is the input of POST /v1/predict:batch: up to
// MaxBatchItems incidents scored against one model load.
type BatchPredictRequest struct {
	Items []PredictRequest `json:"items"`
}

// BatchItemResult is the per-item answer: exactly one of Prediction and
// Error is set. Item-level validation failures do not fail the batch.
type BatchItemResult struct {
	Prediction *PredictResponse `json:"prediction,omitempty"`
	Error      string           `json:"error,omitempty"`
}

// BatchPredictResponse answers a batch. Results[i] corresponds to
// Items[i]; ModelVersion is the single model version every item was
// scored with (the model cannot change mid-batch).
type BatchPredictResponse struct {
	ModelVersion int               `json:"model_version"`
	Results      []BatchItemResult `json:"results"`
}

// Request-size limits. Single predictions carry one incident's title and
// body, so 1 MiB is generous; batches carry up to MaxBatchItems of them.
const (
	maxPredictBody = 1 << 20
	maxBatchBody   = 8 << 20
	// MaxBatchItems caps the items per batch call so one request cannot
	// monopolize the scorer; larger workloads should page.
	MaxBatchItems = 256
)

// Server is the online component: a REST scorer with hot-swappable models.
//
// The exported knobs harden it against overload and degraded monitoring;
// set them before Handler()/Reload() and leave them alone afterwards:
//
//   - MaxInFlight > 0 bounds concurrently-served requests; excess load is
//     shed with 429 + Retry-After instead of queueing without bound.
//   - RequestTimeout > 0 puts a deadline on every request: the handler
//     runs under a context that expires, and a request that overruns
//     answers 503 with a JSON body (see withDeadline).
//   - Degradation is applied to every Scout the server loads: predictions
//     whose monitoring coverage falls below the floor answer
//     VerdictFallback rather than guessing from imputed means.
type Server struct {
	topo   *topology.Topology
	source monitoring.DataSource
	store  *Store

	MaxInFlight    int
	RequestTimeout time.Duration
	Degradation    core.DegradationPolicy
	// RetryAfterBase scales the Retry-After hint on shed (429) responses
	// (default 1s). The emitted hint grows with sustained pressure: each
	// MaxInFlight consecutive sheds add another base interval (capped at
	// 8x), so a client fleet hammering a saturated server is pushed back
	// harder the longer the saturation lasts, and the first shed after a
	// quiet period hints only the base.
	RetryAfterBase time.Duration

	// Kernel selects the batch-inference kernel installed on every Scout
	// the server loads. The zero value is the exact (bit-reproducible)
	// kernel; scoutd's -quantized flag selects the quantized one
	// (DESIGN.md §12 has the tolerance contract).
	Kernel forest.BatchKernel

	// ReloadStore, when set, is consulted at the start of every Reload:
	// it re-reads the backing storage (scoutd points it at its -store
	// directory) and returns a fresh Store, so POST /v1/reload picks up
	// versions published by another process — e.g. a `scoutctl pack` run
	// or an offline trainer writing into the same directory. Errors fail
	// the reload; the previously-served model stays.
	ReloadStore func() (*Store, error)

	// Access, when set, receives one structured JSON line per request
	// (request ID, endpoint, status, latency) plus prediction-fallback
	// events. Nil — the default — logs nothing; see telemetry.Logger.
	Access *telemetry.Logger
	// InstanceID prefixes generated request IDs so IDs from different
	// replicas never collide in aggregated logs. Empty is fine for tests
	// and single-instance runs.
	InstanceID string
	// Clock times requests for the latency histograms. NewServer sets it
	// to time.Now; tests inject a fake to make recorded durations exact.
	Clock func() time.Time

	current atomic.Pointer[servingModel]
	// reloadMu serializes Reload calls: concurrent /v1/reload requests
	// must not interleave a ReloadStore swap with a Latest read.
	reloadMu sync.Mutex
	logger   *log.Logger
	tel      *serverMetrics
	reqSeq   atomic.Uint64
	// inflight is the shedding semaphore, sized on first Handler() call.
	inflight chan struct{}
	// shedStreak counts consecutive sheds since the last admitted request;
	// it scales the Retry-After hint under sustained saturation.
	shedStreak atomic.Int64
	// lastTime remembers the largest trigger time (model hours, as float64
	// bits) any prediction asked about: the serving layer has no model-hours
	// clock of its own, and /v1/health needs *some* time to evaluate
	// schedule-driven availability at. Monotonic by construction, never the
	// wall clock.
	lastTime atomic.Uint64
}

type servingModel struct {
	scout   *core.Scout
	version int
}

// NewServer builds an online scorer over a data source. Call Reload (or
// serve a model via the store) before the first prediction.
func NewServer(topo *topology.Topology, source monitoring.DataSource, store *Store, logger *log.Logger) *Server {
	if logger == nil {
		logger = log.New(logDiscard{}, "", 0)
	}
	s := &Server{
		topo: topo, source: source, store: store, logger: logger,
		tel:   newServerMetrics(),
		Clock: time.Now,
	}
	s.registerSourceMetrics()
	return s
}

type logDiscard struct{}

func (logDiscard) Write(p []byte) (int, error) { return len(p), nil }

// Reload loads the newest snapshot from the store (after refreshing the
// store itself through ReloadStore, when set). The restore is timed with
// the server's clock and exported as scout_model_load_duration_seconds,
// alongside the snapshot's size and format — the observable difference
// between a JSON restore and a scoutpack's zero-re-derivation load.
func (s *Server) Reload() error {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	if s.ReloadStore != nil {
		st, err := s.ReloadStore()
		if err != nil {
			return fmt.Errorf("serving: refreshing store: %w", err)
		}
		s.store = st
	}
	m, ok := s.store.Latest()
	if !ok {
		return fmt.Errorf("serving: store is empty")
	}
	clock := s.Clock
	if clock == nil {
		clock = time.Now
	}
	start := clock()
	scout, err := core.Restore(m.Snapshot, s.topo, s.source)
	if err != nil {
		return fmt.Errorf("serving: restoring v%d: %w", m.Version, err)
	}
	s.tel.setLoadStats(clock().Sub(start), len(m.Snapshot), core.IsScoutpack(m.Snapshot))
	s.install(scout, m.Version)
	s.logger.Printf("serving: loaded %s scout v%d", m.Team, m.Version)
	return nil
}

// Install serves an already-restored Scout. The training path uses it to
// publish the scout it just trained without a snapshot round trip — the
// forest's flat inference view is derived once, at Train, and never again
// (pack_test pins the derivation count). Version is bookkeeping only; it
// should match what the store would report for this model.
func (s *Server) Install(scout *core.Scout, version int) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	s.install(scout, version)
}

// install applies the server-owned policies and swaps the model in.
// Restore/Train build fresh Scouts, so the degradation policy, observer
// and kernel choice must be re-applied on every load.
func (s *Server) install(scout *core.Scout, version int) {
	scout.SetDegradationPolicy(s.Degradation)
	scout.SetObserver(s)
	scout.SetBatchKernel(s.Kernel)
	s.current.Store(&servingModel{scout: scout, version: version})
	s.tel.modelVersion.Set(int64(version))
	s.tel.reloads.Inc()
}

// Scout returns the currently-served Scout (nil before Reload).
func (s *Server) Scout() *core.Scout {
	if m := s.current.Load(); m != nil {
		return m.scout
	}
	return nil
}

// Handler returns the REST mux:
//
//	GET  /v1/health  -> {"status":"ok"|"degraded","model_version":N,...}
//	GET  /v1/model   -> model metadata
//	POST /v1/reload  -> hot-swap to the latest stored model
//	POST /v1/predict -> PredictRequest -> PredictResponse
//	POST /v1/predict:batch -> BatchPredictRequest -> BatchPredictResponse
//	GET  /metrics    -> Prometheus text exposition of every scout_* series
//
// Every route is wrapped in instrument (latency histogram, status
// counters, access log), unrouted paths land on a JSON 404 catch-all,
// and the whole mux sits under the hardening chain, outermost first:
// request-ID stamping (every request gets an X-Request-Id, even ones
// later shed or timed out), panic recovery (a scoring panic answers
// 500, it does not kill the process), load shedding (MaxInFlight;
// beyond it 429 + Retry-After), request deadline (RequestTimeout; an
// overrun answers 503 and the handler's context expires so in-flight
// scoring stops). Shed and timed-out requests are counted in the
// global scout_http_requests_shed_total / _timeouts_total rather than
// per endpoint: they are rejected before (or torn from) the routed
// handler, so per-endpoint attribution would lie about who did work.
func (s *Server) Handler() http.Handler {
	if s.Clock == nil { // zero-value Servers still serve
		s.Clock = time.Now
	}
	mux := http.NewServeMux()
	mux.Handle("GET /v1/health", s.instrument("/v1/health", http.HandlerFunc(s.handleHealth)))
	mux.Handle("GET /v1/model", s.instrument("/v1/model", http.HandlerFunc(s.handleModel)))
	mux.Handle("POST /v1/reload", s.instrument("/v1/reload", http.HandlerFunc(s.handleReload)))
	mux.Handle("POST /v1/predict", s.instrument("/v1/predict", http.HandlerFunc(s.handlePredict)))
	mux.Handle("POST /v1/predict:batch", s.instrument("/v1/predict:batch", http.HandlerFunc(s.handlePredictBatch)))
	mux.Handle("GET /metrics", s.instrument("/metrics", s.tel.reg))
	mux.Handle("/", s.instrument("other", http.HandlerFunc(s.handleNotFound)))
	var h http.Handler = mux
	if s.RequestTimeout > 0 {
		h = s.withDeadline(h)
	}
	if s.MaxInFlight > 0 {
		if s.inflight == nil {
			s.inflight = make(chan struct{}, s.MaxInFlight)
		}
		h = s.withShedding(h)
	}
	return s.withRequestID(s.withRecover(h))
}

// withShedding admits at most MaxInFlight concurrent requests; the rest
// are shed immediately with 429 and a Retry-After hint rather than queued
// (queued requests would stack deadlines and fail slowly — overload
// should fail fast and cheap).
func (s *Server) withShedding(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.inflight <- struct{}{}:
			defer func() { <-s.inflight }()
			s.shedStreak.Store(0)
			next.ServeHTTP(w, r)
		default:
			s.tel.shed.Inc()
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
			s.writeJSON(w, http.StatusTooManyRequests,
				errorBody{Error: fmt.Sprintf("server at capacity (%d in flight); retry shortly", s.MaxInFlight)})
		}
	})
}

// retryAfterSeconds derives the shed hint from current pressure: the
// configured base, plus one more base interval per MaxInFlight
// consecutive sheds (a streak that long means a full capacity's worth
// of clients was turned away without a single admission in between),
// capped at 8 bases. Always at least one whole second — fractional
// Retry-After is not representable in the delay-seconds form.
func (s *Server) retryAfterSeconds() int {
	base := s.RetryAfterBase
	if base <= 0 {
		base = time.Second
	}
	streak := s.shedStreak.Add(1)
	mult := 1 + streak/int64(max(s.MaxInFlight, 1))
	if mult > 8 {
		mult = 8
	}
	secs := int((base*time.Duration(mult) + time.Second - 1) / time.Second)
	return max(secs, 1)
}

// withRecover turns a handler panic into a logged 500: one poisoned
// request must not take down every other incident's scorer. The
// net/http abort sentinel is re-raised — it is control flow, not a bug.
func (s *Server) withRecover(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			s.tel.panics.Inc()
			s.logger.Printf("serving: panic in %s %s: %v", r.Method, r.URL.Path, rec)
			s.writeJSON(w, http.StatusInternalServerError, errorBody{Error: "internal server error"})
		}()
		next.ServeHTTP(w, r)
	})
}

// observeTime feeds a request's trigger time into the health clock
// (monotonic max of all times seen).
func (s *Server) observeTime(t float64) {
	bits := math.Float64bits(t)
	for {
		old := s.lastTime.Load()
		if math.Float64frombits(old) >= t {
			return
		}
		if s.lastTime.CompareAndSwap(old, bits) {
			return
		}
	}
}

// encodeBufs pools the response-encoding buffers: encoding into a pooled
// buffer and writing it once keeps the per-request JSON garbage out of the
// predict hot path (json.NewEncoder per response was one of the larger
// allocation sources) and lets us set Content-Length.
var encodeBufs = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	buf := encodeBufs.Get().(*bytes.Buffer)
	defer encodeBufs.Put(buf)
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		// Should be unreachable for our response types; fail the request
		// rather than emit a truncated body. Written by hand, not via
		// http.Error: that would label the JSON body text/plain, and the
		// error-path contract is that EVERY error response is
		// application/json (see errorpaths_test.go).
		s.logger.Printf("serving: encoding response: %v", err)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		_, _ = w.Write([]byte(`{"error":"internal encoding failure"}` + "\n"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", fmt.Sprint(buf.Len()))
	w.WriteHeader(status)
	if _, err := w.Write(buf.Bytes()); err != nil {
		s.logger.Printf("serving: writing response: %v", err)
	}
}

// decodeJSON decodes a request body under a byte cap, rejecting unknown
// fields (a typoed field silently zeroing Time must not score the wrong
// window). It answers false after writing the error response: 413 when the
// cap tripped, 400 for malformed or unknown-field JSON.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, limit int64, v any) bool {
	body := http.MaxBytesReader(w, r.Body, limit)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.writeJSON(w, http.StatusRequestEntityTooLarge,
				errorBody{Error: fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit)})
			return false
		}
		s.writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request: " + err.Error()})
		return false
	}
	return true
}

type errorBody struct {
	Error string `json:"error"`
}

// handleHealth answers 200 with status "ok", or status "degraded" plus
// the per-dataset picture when the data source admits to trouble (an
// outage schedule, an open circuit breaker). Degraded is still 200: the
// server can serve — with imputation and fallbacks — and a load balancer
// should not evict it for its monitoring substrate's problems. 503 stays
// reserved for "no model loaded".
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	m := s.current.Load()
	if m == nil {
		s.writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "no model loaded"})
		return
	}
	body := map[string]any{"status": "ok", "model_version": m.version}
	if hr := monitoring.HealthReporterOf(s.source); hr != nil {
		t := math.Float64frombits(s.lastTime.Load())
		snap := hr.HealthSnapshot(t)
		for _, h := range snap {
			if !h.Available || h.Breaker == "open" || h.Staleness > 0 {
				body["status"] = "degraded"
				break
			}
		}
		body["data_health"] = snap
		body["health_time"] = t
	}
	s.writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleModel(w http.ResponseWriter, _ *http.Request) {
	m := s.current.Load()
	if m == nil {
		s.writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "no model loaded"})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"team":          m.scout.Team(),
		"model_version": m.version,
		"features":      len(m.scout.FeatureNames()),
		"top_features":  m.scout.TopFeatures(5),
	})
}

// handleReload hot-swaps to the latest stored model. Failures (empty
// store, corrupt snapshot) answer 503 Service Unavailable, not a 4xx: the
// caller did nothing wrong — the serving side is not ready — and load
// balancers and the scoutd health loop treat 503 as "take me out of
// rotation, retry later".
func (s *Server) handleReload(w http.ResponseWriter, _ *http.Request) {
	if err := s.Reload(); err != nil {
		s.writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		return
	}
	s.handleHealth(w, nil)
}

// validatePredict applies the request invariants shared by the single and
// batch endpoints, returning "" when the item is scoreable.
func validatePredict(req *PredictRequest) string {
	if req.Title == "" && req.Body == "" {
		return "title or body required"
	}
	// Time is required: a missing (zero) or negative trigger time would
	// silently score the incident against the t=0 monitoring window — a
	// wrong answer with full confidence — so reject it instead.
	if req.Time <= 0 {
		return "time is required and must be positive (trigger time in model hours)"
	}
	return ""
}

func (m *servingModel) response(p core.Prediction) PredictResponse {
	return PredictResponse{
		Team:           m.scout.Team(),
		Verdict:        string(p.Verdict),
		Responsible:    p.Responsible,
		Confidence:     p.Confidence,
		Model:          p.Model,
		Components:     p.Components,
		Explanation:    p.Explanation,
		Recommendation: recommendation(m.scout.Team(), p),
		ModelVersion:   m.version,
		DataHealth:     healthInfo(p.Health),
	}
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	m := s.current.Load()
	if m == nil {
		s.writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "no model loaded"})
		return
	}
	var req PredictRequest
	if !s.decodeJSON(w, r, maxPredictBody, &req) {
		return
	}
	if msg := validatePredict(&req); msg != "" {
		s.writeJSON(w, http.StatusBadRequest, errorBody{Error: msg})
		return
	}
	s.observeTime(req.Time)
	p := m.scout.PredictCtx(r.Context(), req.Title, req.Body, req.Components, req.Time)
	s.writeJSON(w, http.StatusOK, m.response(p))
}

// handlePredictBatch scores up to MaxBatchItems incidents in one call. The
// model pointer is loaded ONCE, so every item in a batch is answered by
// the same version even if a reload lands mid-request. Item-level
// validation failures yield per-item errors in a 200 response — a batch is
// a unit of transport, not of validity — while request-level problems
// (empty batch, too many items, oversized or malformed body) fail the
// whole call.
func (s *Server) handlePredictBatch(w http.ResponseWriter, r *http.Request) {
	m := s.current.Load()
	if m == nil {
		s.writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "no model loaded"})
		return
	}
	var req BatchPredictRequest
	if !s.decodeJSON(w, r, maxBatchBody, &req) {
		return
	}
	if len(req.Items) == 0 {
		s.writeJSON(w, http.StatusBadRequest, errorBody{Error: "batch must contain at least one item"})
		return
	}
	if len(req.Items) > MaxBatchItems {
		s.writeJSON(w, http.StatusRequestEntityTooLarge,
			errorBody{Error: fmt.Sprintf("batch has %d items; max is %d", len(req.Items), MaxBatchItems)})
		return
	}
	resp := BatchPredictResponse{
		ModelVersion: m.version,
		Results:      make([]BatchItemResult, len(req.Items)),
	}
	// Validate every item first, then score the valid ones in one batched
	// Scout call so the forest streams tree-major across the whole batch.
	valid := make([]int, 0, len(req.Items))
	batch := make([]core.BatchRequest, 0, len(req.Items))
	for i := range req.Items {
		it := &req.Items[i]
		if msg := validatePredict(it); msg != "" {
			resp.Results[i].Error = msg
			continue
		}
		valid = append(valid, i)
		batch = append(batch, core.BatchRequest{
			Title: it.Title, Body: it.Body, Components: it.Components, Time: it.Time,
		})
		s.observeTime(it.Time)
	}
	// Score in chunks and honor the request deadline between chunks: once
	// the context expires (withDeadline has already answered 503),
	// finishing the batch would burn CPU on an answer nobody receives.
	const chunk = 32
	ctx := r.Context()
	for lo := 0; lo < len(batch); lo += chunk {
		if ctx.Err() != nil {
			return
		}
		hi := min(lo+chunk, len(batch))
		for k, p := range m.scout.PredictBatchCtx(ctx, batch[lo:hi]) {
			pr := m.response(p)
			resp.Results[valid[lo+k]].Prediction = &pr
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// recommendation renders the §8 operator-facing fine print.
func recommendation(team string, p core.Prediction) string {
	if !p.Usable() {
		return "The Scout could not extract components; use the existing routing process."
	}
	verb := "suggests this IS"
	if !p.Responsible {
		verb = "suggests this is NOT"
	}
	return fmt.Sprintf("The %s Scout investigated %d component(s) and %s a %s incident. "+
		"Its confidence is %.2f. We recommend not using this output if confidence is below 0.80. "+
		"Attention: known false negatives occur for transient issues, when an incident is created "+
		"after the problem has already been resolved, and if the incident is too broad in scope.",
		team, len(p.Components), verb, team, p.Confidence)
}

// PredictIncident lets the serving model be used as an evaluate.Predictor.
func (s *Server) PredictIncident(in *incident.Incident) core.Prediction {
	m := s.current.Load()
	if m == nil {
		return core.Prediction{Verdict: core.VerdictFallback, Model: "none"}
	}
	return m.scout.PredictIncident(in)
}
