package core

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"scouts/internal/faults"
	"scouts/internal/incident"
)

// restoreAgainst rebinds the shared fixture's trained Scout to another
// data source through the snapshot path (the registry is identical, so
// the trained layout survives).
func restoreAgainst(t *testing.T, f *fixture, sched faults.Schedule, seed int64) (*Scout, *faults.Chaos) {
	t.Helper()
	snap, err := f.scout.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	chaos := faults.NewChaos(f.gen.Telemetry(), sched, seed)
	s, err := Restore(snap, f.gen.Topology(), chaos)
	if err != nil {
		t.Fatal(err)
	}
	return s, chaos
}

// blackoutAll darkens every named dataset for all time.
func blackoutAll(names []string) faults.Schedule {
	var bs []faults.Blackout
	for _, n := range names {
		bs = append(bs, faults.Blackout{Dataset: n, Start: 0, End: faults.Forever})
	}
	return faults.Schedule{Blackouts: bs}
}

// modelIncident returns a test incident that reaches a model (neither
// excluded nor component-less).
func modelIncident(t *testing.T, f *fixture) *incident.Incident {
	t.Helper()
	for _, in := range f.test {
		ex := f.scout.fb.Extract(in.Title, in.Body, in.InitialComponents)
		if !ex.Excluded && !ex.Empty {
			return in
		}
	}
	t.Fatal("no model-path incident in the fixture")
	return nil
}

func TestImputationUnderFullOutage(t *testing.T) {
	f := getFixture(t)
	s, _ := restoreAgainst(t, f, blackoutAll(f.scout.Builder().DatasetNames()), 1)
	in := modelIncident(t, f)
	ex := s.fb.Extract(in.Title, in.Body, in.InitialComponents)

	x, h := s.featurizeWithImputationInto(s.getVec(), ex, in.CreatedAt)
	defer s.putVec(x)

	wantImputed := 0
	for _, g := range s.fb.groups {
		for _, slot := range s.fb.groupSlots[g.name] {
			if x[slot] != s.trainMeans[slot] {
				t.Fatalf("slot %d (%s) = %v, want training mean %v",
					slot, s.fb.names[slot], x[slot], s.trainMeans[slot])
			}
		}
		wantImputed += len(s.fb.groupSlots[g.name])
	}
	if h.ImputedSlots != wantImputed {
		t.Fatalf("ImputedSlots = %d, want %d", h.ImputedSlots, wantImputed)
	}
	if h.TotalSlots != len(s.fb.names) {
		t.Fatalf("TotalSlots = %d, want %d", h.TotalSlots, len(s.fb.names))
	}
	if len(h.DatasetsDown) != h.DatasetsTotal || h.DatasetsTotal != s.fb.datasetCount() {
		t.Fatalf("down %d of %d datasets, want all %d",
			len(h.DatasetsDown), h.DatasetsTotal, s.fb.datasetCount())
	}
	if h.Coverage() >= 1 || h.DatasetCoverage() != 0 {
		t.Fatalf("coverage = %v, dataset coverage = %v under a full outage",
			h.Coverage(), h.DatasetCoverage())
	}
}

func TestImputationUnderPartialOutage(t *testing.T) {
	f := getFixture(t)
	// Darken exactly one feature group (all of its datasets) so its slots —
	// and only its slots — get training means.
	darkGroup := f.scout.fb.groups[0]
	var names []string
	for _, d := range darkGroup.datasets {
		names = append(names, d.Name)
	}
	s, _ := restoreAgainst(t, f, blackoutAll(names), 1)
	clean, _ := restoreAgainst(t, f, faults.Schedule{}, 1)

	in := modelIncident(t, f)
	ex := s.fb.Extract(in.Title, in.Body, in.InitialComponents)
	x, h := s.featurizeWithImputationInto(s.getVec(), ex, in.CreatedAt)
	want, hClean := clean.featurizeWithImputationInto(clean.getVec(), ex, in.CreatedAt)
	defer s.putVec(x)
	defer clean.putVec(want)

	imputed := map[int]bool{}
	for _, slot := range s.fb.groupSlots[darkGroup.name] {
		imputed[slot] = true
		if x[slot] != s.trainMeans[slot] {
			t.Fatalf("dark slot %d (%s) = %v, want training mean %v",
				slot, s.fb.names[slot], x[slot], s.trainMeans[slot])
		}
	}
	for i := range x {
		if !imputed[i] && x[i] != want[i] {
			t.Fatalf("live slot %d (%s) = %v, clean featurization says %v",
				i, s.fb.names[i], x[i], want[i])
		}
	}
	if h.ImputedSlots != len(s.fb.groupSlots[darkGroup.name]) {
		t.Fatalf("ImputedSlots = %d, want %d", h.ImputedSlots, len(s.fb.groupSlots[darkGroup.name]))
	}
	if len(h.DatasetsDown) != len(names) {
		t.Fatalf("DatasetsDown = %v, want the %d darkened datasets", h.DatasetsDown, len(names))
	}
	if hClean.ImputedSlots != 0 || len(hClean.DatasetsDown) != 0 {
		t.Fatalf("clean source reported degradation: %+v", hClean)
	}
}

func TestBatchMatchesSingleUnderChaos(t *testing.T) {
	f := getFixture(t)
	// NaN-heavy corruption plus a partial blackout: the batch path must
	// answer exactly what the single path answers, health reports included.
	names := f.scout.Builder().DatasetNames()
	sched := faults.Schedule{
		Blackouts: []faults.Blackout{{Dataset: names[0], Start: 0, End: faults.Forever}},
	}
	for _, n := range names[1:] {
		sched.Corruptions = append(sched.Corruptions,
			faults.Corruption{Dataset: n, Start: 0, End: faults.Forever, NaNProb: 0.5, SpikeProb: 0.2})
	}
	s, _ := restoreAgainst(t, f, sched, 99)

	ins := f.test[:40]
	reqs := make([]BatchRequest, len(ins))
	for i, in := range ins {
		reqs[i] = BatchRequest{Title: in.Title, Body: in.Body, Components: in.InitialComponents, Time: in.CreatedAt}
	}
	batch := s.PredictBatch(reqs)
	for i, in := range ins {
		single := s.Predict(in.Title, in.Body, in.InitialComponents, in.CreatedAt)
		if !reflect.DeepEqual(batch[i], single) {
			t.Fatalf("incident %s: batch %+v != single %+v", in.ID, batch[i], single)
		}
		if single.Health != nil {
			if f := single.Health.ImputedFraction(); math.IsNaN(f) || f < 0 || f > 1 {
				t.Fatalf("imputed fraction %v out of range", f)
			}
		}
	}
}

func TestDegradationPolicyFallsBack(t *testing.T) {
	f := getFixture(t)
	s, _ := restoreAgainst(t, f, blackoutAll(f.scout.Builder().DatasetNames()), 1)
	in := modelIncident(t, f)

	// Zero policy: the Scout still answers from training means (the
	// pre-policy behavior).
	p := s.Predict(in.Title, in.Body, in.InitialComponents, in.CreatedAt)
	if !p.Usable() {
		t.Fatalf("disabled policy must keep answering, got %+v", p)
	}
	if p.Health == nil || p.Health.DatasetCoverage() != 0 {
		t.Fatalf("model verdict should carry the outage in its health report: %+v", p.Health)
	}

	s.SetDegradationPolicy(DegradationPolicy{MinCoverage: 0.5})
	p = s.Predict(in.Title, in.Body, in.InitialComponents, in.CreatedAt)
	if p.Verdict != VerdictFallback || p.Usable() {
		t.Fatalf("full outage under MinCoverage=0.5 must fall back, got %+v", p)
	}
	if !strings.Contains(p.Explanation, "degraded monitoring") {
		t.Fatalf("fallback should explain the degradation: %s", p.Explanation)
	}
	if p.Health == nil {
		t.Fatal("degraded fallback must carry its health report")
	}

	// The batch path degrades identically.
	b := s.PredictBatch([]BatchRequest{{Title: in.Title, Body: in.Body, Components: in.InitialComponents, Time: in.CreatedAt}})
	if !reflect.DeepEqual(b[0], p) {
		t.Fatalf("batch degradation %+v != single %+v", b[0], p)
	}
}

func TestDegradationPolicyStaleness(t *testing.T) {
	f := getFixture(t)
	var st []faults.Staleness
	for _, n := range f.scout.Builder().DatasetNames() {
		st = append(st, faults.Staleness{Dataset: n, Start: 0, End: faults.Forever, Lag: 10})
	}
	s, _ := restoreAgainst(t, f, faults.Schedule{Stalenesses: st}, 1)
	in := modelIncident(t, f)

	p := s.Predict(in.Title, in.Body, in.InitialComponents, in.CreatedAt)
	if p.Health == nil || p.Health.MaxStaleness != 10 {
		t.Fatalf("health should admit the 10h lag: %+v", p.Health)
	}
	if !p.Usable() {
		t.Fatal("staleness without a policy must not block answers")
	}

	s.SetDegradationPolicy(DegradationPolicy{MaxStaleness: 5})
	p = s.Predict(in.Title, in.Body, in.InitialComponents, in.CreatedAt)
	if p.Verdict != VerdictFallback {
		t.Fatalf("10h lag over a 5h ceiling must fall back, got %+v", p)
	}
}
