package core

import (
	"fmt"
	"testing"
)

func selectorExamples(n int) []selectorExample {
	var out []selectorExample
	for i := 0; i < n; i++ {
		// "Known" incidents: network wording, RF gets them right.
		out = append(out, selectorExample{
			doc:     "switch packet loss detected on tor in cluster, drops rising",
			rfWrong: false,
			id:      fmt.Sprintf("known-%d", i),
		})
		// "Novel" incidents: new vocabulary, RF gets them wrong.
		out = append(out, selectorExample{
			doc:     "optics brownout marginal receive power transceiver flaps",
			rfWrong: true,
			id:      fmt.Sprintf("novel-%d", i),
		})
	}
	return out
}

func TestSelectorLearnsNovelty(t *testing.T) {
	sel, err := trainSelector(selectorExamples(30), SelectorParams{})
	if err != nil {
		t.Fatal(err)
	}
	use, p := sel.UseCPD("optics brownout on new transceiver, marginal power")
	if !use {
		t.Fatalf("selector should route novel wording to CPD+ (p=%v)", p)
	}
	use, _ = sel.UseCPD("switch packet loss, drops rising in cluster")
	if use {
		t.Fatal("selector should keep known wording on the RF path")
	}
}

func TestSelectorEmptyExamples(t *testing.T) {
	sel, err := trainSelector(nil, SelectorParams{})
	if err != nil {
		t.Fatal(err)
	}
	use, p := sel.UseCPD("anything at all")
	if use || p != 0 {
		t.Fatal("untrained selector must trust the RF")
	}
}

func TestSelectorAllCorrectDegrades(t *testing.T) {
	var ex []selectorExample
	for i := 0; i < 20; i++ {
		ex = append(ex, selectorExample{doc: "switch loss", rfWrong: false})
	}
	sel, err := trainSelector(ex, SelectorParams{})
	if err != nil {
		t.Fatal(err)
	}
	if use, _ := sel.UseCPD("switch loss"); use {
		t.Fatal("nothing to learn: selector should never fire")
	}
}

func TestHoldoutSplitDisjointAndComplete(t *testing.T) {
	fit, hold := holdoutSplit(100, 7)
	if len(fit)+len(hold) != 100 {
		t.Fatalf("split sizes %d + %d", len(fit), len(hold))
	}
	if len(hold) != 30 {
		t.Fatalf("holdout = %d, want 30%%", len(hold))
	}
	seen := map[int]bool{}
	for _, i := range append(fit, hold...) {
		if seen[i] {
			t.Fatalf("index %d appears twice", i)
		}
		seen[i] = true
	}
	// Deterministic under the same seed.
	fit2, _ := holdoutSplit(100, 7)
	for i := range fit {
		if fit[i] != fit2[i] {
			t.Fatal("split not deterministic")
		}
	}
}

func TestSnapshotRejectsCustomDecider(t *testing.T) {
	f := getFixture(t)
	snap, err := f.scout.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) == 0 {
		t.Fatal("empty snapshot")
	}
	// Swap in a custom decider: snapshotting must now refuse.
	f.scout.SetDecider(alwaysRF{})
	defer func() {
		// Restore the default selector for other tests sharing the fixture.
		restored, rerr := Restore(snap, f.gen.Topology(), f.gen.Telemetry())
		if rerr != nil {
			t.Fatal(rerr)
		}
		f.scout.SetDecider(restoredSelector(restored))
	}()
	if _, err := f.scout.Snapshot(); err == nil {
		t.Fatal("custom decider should not be snapshottable")
	}
}

type alwaysRF struct{}

func (alwaysRF) UseCPD(string) (bool, float64) { return false, 0 }

// restoredSelector extracts the selector from a restored scout (test-only).
func restoredSelector(s *Scout) DeciderModel { return s.selector }
