package core

import "fmt"

// DataHealth is the data-quality report attached to a prediction: how
// much of the feature vector had to be imputed because monitoring systems
// were unavailable, which datasets were down, and how stale the freshest
// available answer was. It is the §6 degradation contract made explicit —
// the serving layer forwards it to operators, and the degradation policy
// decides from it when a prediction is not trustworthy enough to route on.
type DataHealth struct {
	// ImputedSlots counts feature-vector cells filled with training means
	// because every dataset of their feature group was unavailable.
	ImputedSlots int
	// TotalSlots is the feature-vector length (0 on paths that never
	// featurize, e.g. CPD+).
	TotalSlots int
	// DatasetsDown lists the unavailable datasets the Scout consumes, in
	// feature-group order.
	DatasetsDown []string
	// DatasetsTotal counts the datasets the Scout consumes.
	DatasetsTotal int
	// MaxStaleness is the largest admitted staleness (model hours) across
	// the datasets, 0 when everything is fresh.
	MaxStaleness float64
}

// ImputedFraction is the fraction of feature slots that carry training
// means instead of live data.
func (h DataHealth) ImputedFraction() float64 {
	if h.TotalSlots == 0 {
		return 0
	}
	return float64(h.ImputedSlots) / float64(h.TotalSlots)
}

// Coverage is the live fraction of the feature vector (1 means every
// feature saw real monitoring data).
func (h DataHealth) Coverage() float64 { return 1 - h.ImputedFraction() }

// DatasetCoverage is the fraction of consumed datasets currently
// available — the coverage notion that applies even on paths that never
// build a feature vector.
func (h DataHealth) DatasetCoverage() float64 {
	if h.DatasetsTotal == 0 {
		return 1
	}
	return 1 - float64(len(h.DatasetsDown))/float64(h.DatasetsTotal)
}

// DegradationPolicy decides when monitoring has rotted too far to trust a
// model answer, in which case the Scout hands the incident back to the
// legacy routing process (VerdictFallback) — the deployed PhyNet Scout's
// behavior during monitoring outages rather than guessing from means.
// The zero value disables every check, preserving pre-policy behavior.
type DegradationPolicy struct {
	// MinCoverage is the floor on both feature coverage and dataset
	// coverage; below it predictions fall back. 0 disables.
	MinCoverage float64
	// MaxStaleness is the ceiling on admitted data staleness (model
	// hours); above it predictions fall back. 0 disables.
	MaxStaleness float64
}

// Enabled reports whether any check is active.
func (p DegradationPolicy) Enabled() bool { return p.MinCoverage > 0 || p.MaxStaleness > 0 }

// degradeReason returns a human-readable reason when the policy rejects
// this health report, "" when the report passes.
func (p DegradationPolicy) degradeReason(h DataHealth) string {
	if p.MinCoverage > 0 && h.TotalSlots > 0 && h.Coverage() < p.MinCoverage {
		return fmt.Sprintf("only %.0f%% of features saw live monitoring data (floor %.0f%%)",
			h.Coverage()*100, p.MinCoverage*100)
	}
	if p.MinCoverage > 0 && h.DatasetCoverage() < p.MinCoverage {
		return fmt.Sprintf("only %d of %d monitoring datasets are available (floor %.0f%%)",
			h.DatasetsTotal-len(h.DatasetsDown), h.DatasetsTotal, p.MinCoverage*100)
	}
	if p.MaxStaleness > 0 && h.MaxStaleness > p.MaxStaleness {
		return fmt.Sprintf("monitoring data lags %.1fh behind the incident (ceiling %.1fh)",
			h.MaxStaleness, p.MaxStaleness)
	}
	return ""
}

// degradedPrediction answers with the legacy-routing fallback when the
// policy rejects the health report. ok is true when the prediction should
// be used (i.e. the Scout must NOT answer through a model).
func (s *Scout) degradedPrediction(h DataHealth, ex Extraction) (Prediction, bool) {
	reason := s.degrade.degradeReason(h)
	if reason == "" {
		return Prediction{}, false
	}
	hc := h
	return Prediction{
		Verdict:     VerdictFallback,
		Model:       "none",
		Components:  ex.All(),
		Explanation: "degraded monitoring: " + reason + "; deferring to the legacy routing process",
		Health:      &hc,
	}, true
}

// SetDegradationPolicy installs the degradation policy (safe to call
// before serving traffic; the policy is read on every prediction).
func (s *Scout) SetDegradationPolicy(p DegradationPolicy) { s.degrade = p }

// Degradation returns the active degradation policy.
func (s *Scout) Degradation() DegradationPolicy { return s.degrade }

// sourceHealth assembles the dataset-availability picture without
// featurizing — the health report of the CPD+ and gate paths.
func (s *Scout) sourceHealth(t float64) DataHealth {
	_, down, maxStale := s.fb.sourceHealth(t)
	return DataHealth{
		DatasetsDown:  down,
		DatasetsTotal: s.fb.datasetCount(),
		MaxStaleness:  maxStale,
	}
}
