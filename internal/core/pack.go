package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"

	"scouts/internal/ml/cpd"
	"scouts/internal/ml/forest"
	"scouts/internal/monitoring"
	"scouts/internal/text"
	"scouts/internal/topology"
)

// This file is the Scout-level binary snapshot ("scoutpack"): the
// container that ships a whole trained Scout — routing forest, CPD+ model,
// selector — as one checksummed blob whose forest payloads are the SFF1
// flat arrays (forest/pack.go), loadable with zero re-derivation. The JSON
// snapshot remains the training-side interchange format; scoutpack is the
// serving-side distribution format. PackSnapshot converts between them
// without needing a topology or data source, so a fleet can repack its
// stored JSON snapshots in place.
//
// Layout ("SCPK", all little-endian):
//
//	magic "SCPK" | u32 version | sha256[32] | u32 sectionCount
//	per section: tag[4] | pad[4] | u64 payloadLen | payload | pad to 8
//
// The checksum covers every byte after itself (sectionCount and all
// sections), so a torn or bit-flipped file is rejected before any section
// is parsed. Sections, in fixed order, optional ones simply absent:
//
//	META  JSON packMetaDTO: config source, train means, detector params,
//	      CPD+ params, selector words/threshold, presence flags
//	FRST  SFF1 routing forest (required)
//	CRST  SFF1 CPD+ broad-incident forest (optional)
//	SRST  SFF1 selector meta-forest (optional)

const (
	scoutpackMagic   = "SCPK"
	scoutpackVersion = 1
)

// scoutpackSections is the fixed section order; optional sections may be
// absent but never reordered.
var scoutpackSections = []string{"META", "FRST", "CRST", "SRST"}

// ErrNotScoutpack is returned when a blob does not start with the SCPK
// magic — Restore uses it to fall through to the JSON path.
var ErrNotScoutpack = errors.New("core: not a scoutpack snapshot")

// packMetaDTO is the JSON-encoded META section: everything in a snapshot
// that is not a forest. It is deliberately JSON — tiny, human-auditable
// with `scoutctl inspect`, and versioned by field presence like the
// snapshot DTO it mirrors.
type packMetaDTO struct {
	ConfigSource      string         `json:"config"`
	TrainMeans        []float64      `json:"train_means"`
	Detector          cpd.Params     `json:"detector"`
	CPDParams         cpd.PlusParams `json:"cpd_params"`
	SelectorWords     []string       `json:"selector_words,omitempty"`
	SelectorThreshold float64        `json:"selector_threshold,omitempty"`
}

// SnapshotPack serializes a trained Scout to the scoutpack binary format.
// The same snapshottability rules as Snapshot apply.
func (s *Scout) SnapshotPack() ([]byte, error) {
	if s.cfg.Source == "" {
		return nil, fmt.Errorf("%w: configuration has no source text", ErrNotSnapshottable)
	}
	sel, ok := s.selector.(*Selector)
	if !ok {
		return nil, fmt.Errorf("%w: custom decider %T", ErrNotSnapshottable, s.selector)
	}
	cpdParams, cpdRF := s.cpdPlus.Parts()
	meta := packMetaDTO{
		ConfigSource: s.cfg.Source,
		TrainMeans:   s.trainMeans,
		Detector:     s.detector,
		CPDParams:    cpdParams,
	}
	var selRF *forest.Forest
	if sel.rf != nil {
		meta.SelectorWords = sel.words.Names()
		meta.SelectorThreshold = sel.threshold
		selRF = sel.rf
	}
	return assemblePack(meta, s.rf, cpdRF, selRF)
}

// PackSnapshot converts a JSON snapshot (Snapshot's output) into a
// scoutpack, without a topology or data source: it is a pure format
// conversion, usable against stored snapshot files. Predictions of the
// packed scout are bit-identical to the JSON-restored one.
func PackSnapshot(jsonSnap []byte) ([]byte, error) {
	var dto snapshotDTO
	if err := json.Unmarshal(jsonSnap, &dto); err != nil {
		return nil, fmt.Errorf("core: decoding snapshot for packing: %w", err)
	}
	if dto.Forest == nil || dto.CPD == nil {
		return nil, errors.New("core: snapshot missing models")
	}
	cpdParams, cpdRF := dto.CPD.Parts()
	meta := packMetaDTO{
		ConfigSource: dto.ConfigSource,
		TrainMeans:   dto.TrainMeans,
		Detector:     dto.Detector,
		CPDParams:    cpdParams,
	}
	var selRF *forest.Forest
	if dto.Selector != nil && dto.Selector.RF != nil {
		meta.SelectorWords = dto.Selector.Words
		meta.SelectorThreshold = dto.Selector.Threshold
		selRF = dto.Selector.RF
	}
	return assemblePack(meta, dto.Forest, cpdRF, selRF)
}

// assemblePack writes the envelope: header with a checksum placeholder,
// sections, then the sha256 over everything after the checksum field.
func assemblePack(meta packMetaDTO, rf, cpdRF, selRF *forest.Forest) ([]byte, error) {
	metaBlob, err := json.Marshal(meta)
	if err != nil {
		return nil, fmt.Errorf("core: packing snapshot meta: %w", err)
	}
	rfBlob, err := rf.AppendBinary(nil)
	if err != nil {
		return nil, fmt.Errorf("core: packing routing forest: %w", err)
	}
	sections := []struct {
		tag     string
		payload []byte
	}{{"META", metaBlob}, {"FRST", rfBlob}}
	if cpdRF != nil {
		blob, err := cpdRF.AppendBinary(nil)
		if err != nil {
			return nil, fmt.Errorf("core: packing CPD+ forest: %w", err)
		}
		sections = append(sections, struct {
			tag     string
			payload []byte
		}{"CRST", blob})
	}
	if selRF != nil {
		blob, err := selRF.AppendBinary(nil)
		if err != nil {
			return nil, fmt.Errorf("core: packing selector forest: %w", err)
		}
		sections = append(sections, struct {
			tag     string
			payload []byte
		}{"SRST", blob})
	}

	buf := append([]byte(nil), scoutpackMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, scoutpackVersion)
	sumAt := len(buf)
	buf = append(buf, make([]byte, sha256.Size)...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(sections)))
	for _, sec := range sections {
		buf = append(buf, sec.tag...)
		buf = append(buf, 0, 0, 0, 0)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(len(sec.payload)))
		buf = append(buf, sec.payload...)
		for len(buf)%8 != 0 {
			buf = append(buf, 0)
		}
	}
	sum := sha256.Sum256(buf[sumAt+sha256.Size:])
	copy(buf[sumAt:], sum[:])
	return buf, nil
}

// parseScoutpack verifies the envelope (magic, version, checksum) and
// returns the section payloads keyed by tag. Every length is checked
// against the remaining buffer before slicing.
func parseScoutpack(data []byte) (map[string][]byte, error) {
	headerLen := 4 + 4 + sha256.Size + 4
	if len(data) < 8 || string(data[:4]) != scoutpackMagic {
		return nil, ErrNotScoutpack
	}
	if len(data) < headerLen {
		return nil, errors.New("core: scoutpack header truncated")
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != scoutpackVersion {
		return nil, fmt.Errorf("core: scoutpack version %d not supported (want %d)", v, scoutpackVersion)
	}
	sumAt := 8
	stored := data[sumAt : sumAt+sha256.Size]
	if sum := sha256.Sum256(data[sumAt+sha256.Size:]); string(sum[:]) != string(stored) {
		return nil, errors.New("core: scoutpack checksum mismatch (torn or corrupted file)")
	}
	count := int(binary.LittleEndian.Uint32(data[sumAt+sha256.Size:]))
	if count < 2 || count > len(scoutpackSections) {
		return nil, fmt.Errorf("core: scoutpack carries %d sections, want 2..%d", count, len(scoutpackSections))
	}
	secs := make(map[string][]byte, count)
	off := headerLen
	next := 0
	for i := 0; i < count; i++ {
		if len(data)-off < 16 {
			return nil, errors.New("core: scoutpack section header truncated")
		}
		tag := string(data[off : off+4])
		// Tags must appear in scoutpackSections order, each at most once.
		for next < len(scoutpackSections) && scoutpackSections[next] != tag {
			next++
		}
		if next == len(scoutpackSections) {
			return nil, fmt.Errorf("core: scoutpack section %q unknown or out of order", tag)
		}
		next++
		n := binary.LittleEndian.Uint64(data[off+8:])
		off += 16
		if n > uint64(len(data)-off) {
			return nil, fmt.Errorf("core: scoutpack section %q claims %d bytes, only %d remain", tag, n, len(data)-off)
		}
		secs[tag] = data[off : off+int(n)]
		off += int(n)
		off = (off + 7) &^ 7
		if off > len(data) {
			return nil, errors.New("core: scoutpack section padding overruns buffer")
		}
	}
	if secs["META"] == nil || secs["FRST"] == nil {
		return nil, errors.New("core: scoutpack missing META or FRST section")
	}
	return secs, nil
}

// restorePack rebuilds a Scout from a scoutpack blob — Restore's binary
// path. The forests come up flat-only: inference works through the SFF1
// arrays with zero re-derivation, and Snapshot/SnapshotPack on the result
// are unavailable (the pointer trees are gone by design).
func restorePack(data []byte, topo *topology.Topology, source monitoring.DataSource) (*Scout, error) {
	secs, err := parseScoutpack(data)
	if err != nil {
		return nil, err
	}
	var meta packMetaDTO
	if err := json.Unmarshal(secs["META"], &meta); err != nil {
		return nil, fmt.Errorf("core: scoutpack META: %w", err)
	}
	rf, err := forest.ForestFromBinary(secs["FRST"])
	if err != nil {
		return nil, fmt.Errorf("core: scoutpack routing forest: %w", err)
	}
	var cpdRF *forest.Forest
	if blob := secs["CRST"]; blob != nil {
		if cpdRF, err = forest.ForestFromBinary(blob); err != nil {
			return nil, fmt.Errorf("core: scoutpack CPD+ forest: %w", err)
		}
	}
	cfg, err := ParseConfig(meta.ConfigSource)
	if err != nil {
		return nil, fmt.Errorf("core: scoutpack config: %w", err)
	}
	s := &Scout{
		cfg:        cfg,
		rf:         rf,
		cpdPlus:    cpd.PlusFromParts(meta.CPDParams, cpdRF),
		trainMeans: meta.TrainMeans,
		detector:   meta.Detector,
	}
	s.fb = NewFeatureBuilder(cfg, topo, source)
	if got, want := len(s.fb.FeatureNames()), len(rf.Features()); got != want {
		return nil, fmt.Errorf("core: scoutpack layout (%d features) does not match data source (%d)", want, got)
	}
	if blob := secs["SRST"]; blob != nil {
		selRF, err := forest.ForestFromBinary(blob)
		if err != nil {
			return nil, fmt.Errorf("core: scoutpack selector forest: %w", err)
		}
		s.selector = &Selector{
			words:     text.NewWordCounter(meta.SelectorWords),
			rf:        selRF,
			threshold: meta.SelectorThreshold,
		}
	} else {
		s.selector = &Selector{}
	}
	return s, nil
}

// PackInfo summarizes a scoutpack for operators (`scoutctl inspect`).
type PackInfo struct {
	Version     int     `json:"version"`
	Bytes       int     `json:"bytes"`
	Features    int     `json:"features"`
	Trees       int     `json:"trees"`
	Nodes       int     `json:"nodes"`
	CPDTrees    int     `json:"cpd_trees"`
	SelTrees    int     `json:"selector_trees"`
	TrainMeans  int     `json:"train_means"`
	SelectorThr float64 `json:"selector_threshold,omitempty"`
}

// InspectPack verifies a scoutpack's envelope and returns its summary
// without needing a topology or data source.
func InspectPack(data []byte) (PackInfo, error) {
	secs, err := parseScoutpack(data)
	if err != nil {
		return PackInfo{}, err
	}
	var meta packMetaDTO
	if err := json.Unmarshal(secs["META"], &meta); err != nil {
		return PackInfo{}, fmt.Errorf("core: scoutpack META: %w", err)
	}
	info := PackInfo{
		Version:     scoutpackVersion,
		Bytes:       len(data),
		TrainMeans:  len(meta.TrainMeans),
		SelectorThr: meta.SelectorThreshold,
	}
	rf, err := forest.ForestFromBinary(secs["FRST"])
	if err != nil {
		return PackInfo{}, fmt.Errorf("core: scoutpack routing forest: %w", err)
	}
	info.Features = len(rf.Features())
	info.Trees = rf.NumTrees()
	info.Nodes = rf.NumNodes()
	if blob := secs["CRST"]; blob != nil {
		f, err := forest.ForestFromBinary(blob)
		if err != nil {
			return PackInfo{}, fmt.Errorf("core: scoutpack CPD+ forest: %w", err)
		}
		info.CPDTrees = f.NumTrees()
	}
	if blob := secs["SRST"]; blob != nil {
		f, err := forest.ForestFromBinary(blob)
		if err != nil {
			return PackInfo{}, fmt.Errorf("core: scoutpack selector forest: %w", err)
		}
		info.SelTrees = f.NumTrees()
	}
	return info, nil
}

// IsScoutpack reports whether data carries the scoutpack magic — the
// cheap format sniff the diskstore and Restore share.
func IsScoutpack(data []byte) bool {
	return len(data) >= 4 && string(data[:4]) == scoutpackMagic
}

// VerifyScoutpack checks a scoutpack's envelope — magic, version,
// checksum, section table — without building any model from it. The
// diskstore uses it to quarantine damaged files at load time instead of
// failing a later hot-swap.
func VerifyScoutpack(data []byte) error {
	_, err := parseScoutpack(data)
	return err
}

// SetBatchKernel selects the batch-inference kernel on every forest the
// Scout carries (routing, CPD+, selector). The zero value is the exact
// kernel; serving flips to a quantized kernel at load time when
// configured (DESIGN.md §12 has the tolerance contract).
func (s *Scout) SetBatchKernel(k forest.BatchKernel) {
	if s.rf != nil {
		s.rf.SetBatchKernel(k)
	}
	if s.cpdPlus != nil {
		if _, rf := s.cpdPlus.Parts(); rf != nil {
			rf.SetBatchKernel(k)
		}
	}
	if sel, ok := s.selector.(*Selector); ok && sel.rf != nil {
		sel.rf.SetBatchKernel(k)
	}
}
