package core

import (
	"testing"

	"scouts/internal/cloudsim"
	"scouts/internal/monitoring"
)

// windowOnly hides the Telemetry's StatsSource capability, forcing the
// builder onto the window-materializing adapter — the pre-aggregate code
// path.
type windowOnly struct{ monitoring.DataSource }

// TestFeaturizeStatsPathBitIdentical proves the aggregate-backed
// featurization is a pure optimization on the simulator path: for the same
// incident the stats-capable source and the window-materializing fallback
// produce bit-identical feature vectors and CPD inputs (the simulator
// computes window aggregates with the exact arithmetic of the materialized
// path; see DESIGN.md §7 for why the Store's moment-derived stats are only
// tolerance-equal).
func TestFeaturizeStatsPathBitIdentical(t *testing.T) {
	gen := cloudsim.New(cloudsim.Params{Seed: 5, Days: 10, IncidentsPerDay: 5})
	cfg, err := ParseConfig(DefaultPhyNetConfig)
	if err != nil {
		t.Fatal(err)
	}
	tel := gen.Telemetry()
	tel.AddAnomaly(cloudsim.Anomaly{
		Component: "tor1.c1.dc1",
		Start:     40,
		End:       44,
		Effects: []cloudsim.Effect{
			{Dataset: cloudsim.DSTemp, MeanShift: 12, StdScale: 3},
			{Dataset: cloudsim.DSSyslog, EventRate: 4},
		},
	})
	fast := NewFeatureBuilder(cfg, gen.Topology(), tel)
	slow := NewFeatureBuilder(cfg, gen.Topology(), windowOnly{tel})

	for _, tc := range []struct{ title, body string }{
		{"temp alarm", "tor1.c1.dc1 overheating, syslog bursts"},
		{"cluster degraded", "cluster c1.dc1 is degraded"},
		{"server issue", "srv1.c1.dc1 unreachable from vm1.c1.dc1"},
	} {
		ex := fast.Extract(tc.title, tc.body, nil)
		for _, at := range []float64{42.5, 100.0} {
			xf := fast.Featurize(ex, at)
			xs := slow.Featurize(ex, at)
			for i := range xf {
				if xf[i] != xs[i] {
					t.Fatalf("%s at t=%.1f: feature %q differs: %v vs %v",
						tc.title, at, fast.FeatureNames()[i], xf[i], xs[i])
				}
			}
			cf, cs := fast.CPDInput(ex, at), slow.CPDInput(ex, at)
			if len(cf.Events) != len(cs.Events) {
				t.Fatalf("%s: CPD event datasets differ: %d vs %d", tc.title, len(cf.Events), len(cs.Events))
			}
			for name, counts := range cf.Events {
				want := cs.Events[name]
				if len(counts) != len(want) {
					t.Fatalf("%s: CPD %s has %d counts, want %d", tc.title, name, len(counts), len(want))
				}
				for i := range counts {
					if counts[i] != want[i] {
						t.Fatalf("%s: CPD %s count %d differs: %v vs %v", tc.title, name, i, counts[i], want[i])
					}
				}
			}
		}
	}
}
