package core

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"scouts/internal/metrics"
	"scouts/internal/ml/cpd"
	"scouts/internal/monitoring"
	"scouts/internal/topology"
)

// Extraction is the result of running the configuration's component
// extractors and exclusion rules over an incident's text (§5.1, §5.3).
type Extraction struct {
	// ByType holds the validated components per component type.
	ByType map[topology.ComponentType][]string
	// Devices are the device-level components (VMs, servers, switches) —
	// the set that decides narrow vs broad scope for CPD+ (§5.2.2).
	Devices []string
	// Broad is true when the incident implicates clusters or DCs but no
	// small device set.
	Broad bool
	// Excluded is true when a TITLE/BODY exclusion rule fired: the
	// incident is explicitly out of the team's scope.
	Excluded bool
	// Empty is true when no component could be extracted; such incidents
	// fall back to the legacy routing process (§5.3).
	Empty bool
}

// All returns every extracted component.
func (e Extraction) All() []string {
	var out []string
	for _, typ := range typeOrder {
		out = append(out, e.ByType[typ]...)
	}
	return out
}

// typeOrder fixes the canonical component-type ordering of the feature
// layout.
var typeOrder = []topology.ComponentType{
	topology.TypeVM, topology.TypeServer, topology.TypeSwitch,
	topology.TypeCluster, topology.TypeDC,
}

// featureGroup is one column block of the feature vector: a dataset, or
// several datasets merged by class tag (§5.1 "the automatic combination of
// related data sets").
type featureGroup struct {
	name     string
	datasets []monitoring.Descriptor
	isEvent  bool
}

func (g featureGroup) coversType(t topology.ComponentType) bool {
	for _, d := range g.datasets {
		if d.CoversType(t) {
			return true
		}
	}
	return false
}

// coversScope extends coversType for aggregate component types: cluster
// features combine "all data with the same cluster tag" (§5.2), i.e. the
// data of the cluster's switches and servers as well as cluster-keyed
// datasets; DC features aggregate the cluster-granularity data of the DC's
// clusters.
func (g featureGroup) coversScope(t topology.ComponentType) bool {
	switch t {
	case topology.TypeCluster:
		return g.coversType(topology.TypeCluster) ||
			g.coversType(topology.TypeSwitch) || g.coversType(topology.TypeServer)
	case topology.TypeDC:
		return g.coversType(topology.TypeDC) || g.coversType(topology.TypeCluster)
	default:
		return g.coversType(t)
	}
}

// FeatureBuilder turns (incident, monitoring data) into the fixed-length
// feature vector of §5.2 and into CPD+ inputs.
type FeatureBuilder struct {
	cfg    *Config
	topo   *topology.Topology
	source monitoring.DataSource
	// stats is the aggregate-query view of source: the source itself when
	// it offers monitoring.StatsSource (the Store, the cloud simulator), a
	// window-materializing adapter otherwise. Featurization pulls baseline
	// statistics and event counts through it so the hot path stops copying
	// raw windows it only ever reduced to count/mean/std.
	stats monitoring.StatsSource
	// health is the source's availability view when it has one (a chaos
	// wrapper, a circuit breaker), nil otherwise. Imputation prefers it
	// over registry presence: an outage hides data, not the dataset's
	// existence, so the feature layout survives the outage.
	health monitoring.HealthReporter

	groups []featureGroup
	types  []topology.ComponentType // component types present in the layout
	names  []string
	// slot maps (type, group, stat) to the vector index; built once.
	slotOf map[string]int
	// groupSlots lists the vector indices belonging to each group name,
	// used for mean imputation when a monitoring system disappears.
	groupSlots map[string][]int
	// merge pools the normalized-series scratch buffer FeaturizeInto
	// reduces each feature group through, so concurrent featurization does
	// not regrow one per (request, group).
	merge sync.Pool
}

// NewFeatureBuilder computes the feature layout from the configuration and
// the datasets the source advertises. The layout depends only on the
// dataset *registry* (names, types, class tags, coverage), so a Scout
// trained against one source can score against another with the same
// registry.
func NewFeatureBuilder(cfg *Config, topo *topology.Topology, source monitoring.DataSource) *FeatureBuilder {
	fb := &FeatureBuilder{
		cfg: cfg, topo: topo, source: source,
		stats:      monitoring.StatsSourceOf(source),
		health:     monitoring.HealthReporterOf(source),
		slotOf:     map[string]int{},
		groupSlots: map[string][]int{},
	}

	// Group datasets by class tag.
	byGroup := map[string][]monitoring.Descriptor{}
	for _, d := range source.Datasets() {
		if !cfg.UsesDataset(d.Name) {
			continue
		}
		class := d.Class
		if o := cfg.ClassOverride(d.Name); o != "" {
			class = o
		}
		key := d.Name
		if class != "" {
			key = "class:" + class
		}
		byGroup[key] = append(byGroup[key], d)
	}
	var keys []string
	for k := range byGroup {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		ds := byGroup[k]
		name := strings.TrimPrefix(k, "class:")
		fb.groups = append(fb.groups, featureGroup{
			name:     name,
			datasets: ds,
			isEvent:  ds[0].Type == monitoring.Event,
		})
	}

	// Component types: those with an extractor AND any covering dataset.
	// The PhyNet Scout has no VM features because PhyNet monitors no VM
	// data (§5.2).
	for _, typ := range typeOrder {
		if _, ok := cfg.Extractors[typ]; !ok {
			continue
		}
		covered := false
		for _, g := range fb.groups {
			if g.coversScope(typ) {
				covered = true
				break
			}
		}
		if covered {
			fb.types = append(fb.types, typ)
		}
	}

	// Build the flat name layout.
	add := func(group, name string) {
		fb.slotOf[name] = len(fb.names)
		fb.names = append(fb.names, name)
		if group != "" {
			fb.groupSlots[group] = append(fb.groupSlots[group], len(fb.names)-1)
		}
	}
	for _, typ := range fb.types {
		for _, g := range fb.groups {
			if !g.coversScope(typ) {
				continue
			}
			if g.isEvent {
				add(g.name, fmt.Sprintf("%s.%s.count", typ, g.name))
				continue
			}
			for _, stat := range metrics.SummaryNames {
				add(g.name, fmt.Sprintf("%s.%s.%s", typ, g.name, stat))
			}
		}
		// The per-type component count (§5.2: it helps the model judge
		// whether a percentile shift is significant).
		add("", fmt.Sprintf("%s.ncomponents", typ))
	}
	return fb
}

// FeatureNames returns the layout's feature names.
func (fb *FeatureBuilder) FeatureNames() []string { return fb.names }

// Groups returns the feature-group names (one per dataset or class).
func (fb *FeatureBuilder) Groups() []string {
	out := make([]string, len(fb.groups))
	for i, g := range fb.groups {
		out[i] = g.name
	}
	return out
}

// GroupSlots returns the vector indices owned by a feature group.
func (fb *FeatureBuilder) GroupSlots(group string) []int {
	return append([]int(nil), fb.groupSlots[group]...)
}

// Extract runs the configured extractors and exclusion rules on incident
// text (§5.1, §5.3).
func (fb *FeatureBuilder) Extract(title, body string, mentioned []string) Extraction {
	ex := Extraction{ByType: map[topology.ComponentType][]string{}}
	for _, rule := range fb.cfg.Excludes {
		switch rule.Field {
		case "TITLE":
			if rule.Re.MatchString(title) {
				ex.Excluded = true
			}
		case "BODY":
			if rule.Re.MatchString(body) {
				ex.Excluded = true
			}
		}
	}

	text := title + "\n" + body
	seen := map[string]bool{}
	consider := func(name string) {
		if seen[name] {
			return
		}
		seen[name] = true
		comp, ok := fb.topo.Lookup(name)
		if !ok {
			return
		}
		// Component-level exclusion rules (e.g. decommissioned switches).
		for _, rule := range fb.cfg.Excludes {
			if rule.Field == string(comp.Type) && rule.Re.MatchString(name) {
				return
			}
		}
		ex.ByType[comp.Type] = append(ex.ByType[comp.Type], name)
	}
	for _, typ := range typeOrder {
		re, ok := fb.cfg.Extractors[typ]
		if !ok {
			continue
		}
		for _, m := range re.FindAllString(text, -1) {
			consider(m)
		}
	}
	// Structured mentions (the incident-management system also carries a
	// component list; the deployed Scout uses both).
	for _, m := range mentioned {
		consider(m)
	}

	// Dependency expansion through the topology abstraction: a VM implies
	// its host server; a server implies its ToR; everything implies its
	// cluster and DC (§5.1).
	for _, vm := range ex.ByType[topology.TypeVM] {
		if srv := fb.topo.ServerOfVM(vm); srv != "" {
			consider(srv)
		}
	}
	for _, srv := range ex.ByType[topology.TypeServer] {
		if tor := fb.topo.ToROfServer(srv); tor != "" {
			consider(tor)
		}
	}
	for _, typ := range typeOrder {
		for _, c := range ex.ByType[typ] {
			for _, anc := range fb.topo.Ancestors(c) {
				consider(anc)
			}
		}
	}
	for _, typ := range typeOrder {
		sort.Strings(ex.ByType[typ])
	}

	ex.Devices = append(ex.Devices, ex.ByType[topology.TypeVM]...)
	ex.Devices = append(ex.Devices, ex.ByType[topology.TypeServer]...)
	ex.Devices = append(ex.Devices, ex.ByType[topology.TypeSwitch]...)
	hasScope := len(ex.ByType[topology.TypeCluster]) > 0 || len(ex.ByType[topology.TypeDC]) > 0
	ex.Broad = len(ex.Devices) == 0 && hasScope
	ex.Empty = len(ex.Devices) == 0 && !hasScope
	return ex
}

// contributors returns the components whose data feeds the features of one
// component type: the extracted components of that type, plus — for
// clusters — every device the cluster tag covers (§5.2 "all data with the
// same ... 'cluster' tag is combined").
func (fb *FeatureBuilder) contributors(ex Extraction, typ topology.ComponentType) []string {
	switch typ {
	case topology.TypeCluster:
		var out []string
		for _, cl := range ex.ByType[typ] {
			out = append(out, cl)
			out = append(out, fb.topo.DescendantsOfType(cl, topology.TypeSwitch)...)
			out = append(out, fb.topo.DescendantsOfType(cl, topology.TypeServer)...)
		}
		return out
	case topology.TypeDC:
		// DC features aggregate the cluster-granularity datasets of the
		// DC's clusters; device-level data at DC scope would both dilute
		// (§9) and explode the query cost.
		var out []string
		for _, dc := range ex.ByType[typ] {
			out = append(out, dc)
			out = append(out, fb.topo.DescendantsOfType(dc, topology.TypeCluster)...)
		}
		return out
	default:
		return ex.ByType[typ]
	}
}

// Featurize builds the feature vector for an incident triggered at time t:
// statistics over the look-back window [t-T, t), with each series
// normalized against the preceding window [t-2T, t-T) so that features
// capture *changes* that indicate a failure (§5.2).
func (fb *FeatureBuilder) Featurize(ex Extraction, t float64) []float64 {
	return fb.FeaturizeInto(make([]float64, len(fb.names)), ex, t)
}

// FeaturizeInto is Featurize writing into a caller-owned vector — the
// pooled form the batch and serving paths use so scoring an incident
// produces no per-request feature-vector garbage. x must come from the
// same layout (len(FeatureNames()) cells); a mismatched slice is replaced
// by a fresh one. Every slot is overwritten, so a dirty pooled vector is
// fine. Returns the filled vector.
//
//scout:hotpath
func (fb *FeatureBuilder) FeaturizeInto(x []float64, ex Extraction, t float64) []float64 {
	if len(x) != len(fb.names) {
		x = make([]float64, len(fb.names))
	}
	mp, _ := fb.merge.Get().(*[]float64)
	if mp == nil {
		mp = new([]float64)
	}
	T := fb.cfg.LookbackHours
	slot := 0
	for _, typ := range fb.types {
		comps := fb.contributors(ex, typ)
		for _, g := range fb.groups {
			if !g.coversScope(typ) {
				continue
			}
			if g.isEvent {
				count := 0.0
				for _, d := range g.datasets {
					for _, comp := range comps {
						count += float64(fb.stats.EventCount(d.Name, comp, t-T, t))
					}
				}
				x[slot] = count
				slot++
				continue
			}
			merged := (*mp)[:0]
			for _, d := range g.datasets {
				for _, comp := range comps {
					cur := fb.source.SeriesWindow(d.Name, comp, t-T, t)
					if len(cur) == 0 {
						continue
					}
					// The baseline window is only ever reduced to its mean
					// and standard deviation — ask the source for the
					// aggregates instead of materializing the values.
					bs, ok := fb.stats.WindowStats(d.Name, comp, t-2*T, t-T)
					merged = appendNormalized(merged, cur, bs, ok)
				}
			}
			metrics.Summarize(merged).VectorInto(x[slot : slot+len(metrics.SummaryNames)])
			slot += len(metrics.SummaryNames)
			*mp = merged // keep the grown capacity for the next group
		}
		x[slot] = float64(len(ex.ByType[typ]))
		slot++
	}
	fb.merge.Put(mp)
	return x
}

// appendNormalized z-scores the current window against the baseline
// window's aggregates and appends the result to dst, so merged series from
// different hardware are comparable and a distribution shift shows up in
// the upper/lower percentiles. baseOK is false when the baseline window was
// empty; the current window's own mean then centers the values (and the
// zero std falls through to the same floor the materializing implementation
// used).
//
//scout:hotpath
func appendNormalized(dst, cur []float64, base monitoring.Stats, baseOK bool) []float64 {
	mean, std := base.Mean, base.Std
	if !baseOK {
		mean = metrics.Mean(cur)
		std = 0
	}
	if std < 1e-9 {
		std = 1e-9 + math.Abs(mean)*0.01
		if std < 1e-9 {
			std = 1
		}
	}
	for _, v := range cur {
		dst = append(dst, (v-mean)/std)
	}
	return dst
}

// CPDInput assembles the CPD+ evidence for an incident (§5.2.2): raw series
// and event counts for the implicated devices, or — for broad incidents —
// for every switch and server in the implicated clusters.
func (fb *FeatureBuilder) CPDInput(ex Extraction, t float64) cpd.Input {
	in := cpd.Input{
		Broad:  ex.Broad,
		Series: map[string][][]float64{},
		Events: map[string][]float64{},
	}
	T := fb.cfg.LookbackHours
	comps := ex.Devices
	if ex.Broad {
		// Cap the per-cluster device sample: change-point detection is
		// the expensive path and the cluster-level model consumes
		// *average* rates, which a sample estimates fine.
		const maxPerKind = 8
		cap8 := func(xs []string) []string {
			if len(xs) > maxPerKind {
				return xs[:maxPerKind]
			}
			return xs
		}
		for _, cl := range ex.ByType[topology.TypeCluster] {
			comps = append(comps, cl)
			comps = append(comps, cap8(fb.topo.DescendantsOfType(cl, topology.TypeSwitch))...)
			comps = append(comps, cap8(fb.topo.DescendantsOfType(cl, topology.TypeServer))...)
		}
		for _, dc := range ex.ByType[topology.TypeDC] {
			comps = append(comps, cap8(fb.topo.DescendantsOfType(dc, topology.TypeCluster))...)
		}
	} else {
		// Narrow incidents still examine the cluster-granularity signals
		// of the devices' clusters (e.g. canary reachability).
		seen := map[string]bool{}
		for _, d := range ex.Devices {
			if cl := fb.topo.ClusterOf(d); cl != "" && !seen[cl] {
				seen[cl] = true
				comps = append(comps, cl)
			}
		}
	}
	for _, g := range fb.groups {
		for _, d := range g.datasets {
			for _, comp := range comps {
				if d.Type == monitoring.Event {
					n := fb.stats.EventCount(d.Name, comp, t-T, t)
					if n == 0 {
						// A zero count is ambiguous between "quiet window"
						// and "dataset does not observe this component";
						// only the former contributes a zero observation.
						c, ok := fb.topo.Lookup(comp)
						if !ok || !d.CoversType(c.Type) {
							continue
						}
					}
					in.Events[d.Name] = append(in.Events[d.Name], float64(n))
					continue
				}
				// Use the doubled window so the change point (fault
				// onset) sits inside the series.
				series := fb.source.SeriesWindow(d.Name, comp, t-2*T, t)
				if len(series) > 0 {
					in.Series[d.Name] = append(in.Series[d.Name], series)
				}
			}
		}
	}
	return in
}

// datasetCount counts the datasets the builder consumes.
func (fb *FeatureBuilder) datasetCount() int {
	n := 0
	for _, g := range fb.groups {
		n += len(g.datasets)
	}
	return n
}

// sourceHealth reports the availability picture featurization faces at
// time t: availability per consumed dataset, the unavailable datasets in
// feature-group order, and the largest admitted staleness (model hours).
// Sources without the monitoring.HealthReporter capability fall back to
// registry presence — a dataset deprecated out of Datasets() counts as
// down, which is exactly the §6 "monitoring system disappeared" case.
func (fb *FeatureBuilder) sourceHealth(t float64) (av map[string]bool, down []string, maxStale float64) {
	av = make(map[string]bool, fb.datasetCount())
	if fb.health != nil {
		for _, g := range fb.groups {
			for _, d := range g.datasets {
				h := fb.health.DatasetHealth(d.Name, t)
				av[d.Name] = h.Available
				if h.Staleness > maxStale {
					maxStale = h.Staleness
				}
			}
		}
	} else {
		for _, d := range fb.source.Datasets() {
			av[d.Name] = true
		}
	}
	for _, g := range fb.groups {
		for _, d := range g.datasets {
			if !av[d.Name] {
				down = append(down, d.Name)
			}
		}
	}
	return av, down, maxStale
}

// GroupDatasets lists the dataset names a feature group consumes (empty
// for class-derived groups that read no telemetry).
func (fb *FeatureBuilder) GroupDatasets(group string) []string {
	for _, g := range fb.groups {
		if g.name != group {
			continue
		}
		out := make([]string, len(g.datasets))
		for i, d := range g.datasets {
			out[i] = d.Name
		}
		return out
	}
	return nil
}

// DatasetNames lists the dataset names the builder consumes (sorted).
func (fb *FeatureBuilder) DatasetNames() []string {
	var out []string
	for _, g := range fb.groups {
		for _, d := range g.datasets {
			out = append(out, d.Name)
		}
	}
	sort.Strings(out)
	return out
}
