package core

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"scouts/internal/ml/forest"
)

// TestScoutpackRoundTrip is the container-level round-trip gate: a Scout
// restored from its scoutpack answers every held-out incident exactly as
// the JSON-restored one does — same verdicts, bit-identical confidences.
func TestScoutpackRoundTrip(t *testing.T) {
	f := getFixture(t)
	jsonSnap, err := f.scout.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	pack, err := f.scout.SnapshotPack()
	if err != nil {
		t.Fatal(err)
	}
	if float64(len(pack)) > float64(len(jsonSnap)) {
		t.Logf("note: pack (%d B) larger than JSON (%d B)", len(pack), len(jsonSnap))
	}

	topo, tel := f.gen.Topology(), f.gen.Telemetry()
	fromJSON, err := Restore(jsonSnap, topo, tel)
	if err != nil {
		t.Fatal(err)
	}
	fromPack, err := Restore(pack, topo, tel)
	if err != nil {
		t.Fatal(err)
	}
	for i, in := range f.test[:80] {
		pj := fromJSON.PredictIncident(in)
		pp := fromPack.PredictIncident(in)
		if pj.Verdict != pp.Verdict || pj.Responsible != pp.Responsible {
			t.Fatalf("incident %d: pack verdict %v/%v != json %v/%v", i, pp.Verdict, pp.Responsible, pj.Verdict, pj.Responsible)
		}
		if math.Float64bits(pj.Confidence) != math.Float64bits(pp.Confidence) {
			t.Fatalf("incident %d: pack confidence %v != json %v", i, pp.Confidence, pj.Confidence)
		}
	}
}

// TestPackSnapshotConversion pins that the offline conversion path —
// PackSnapshot over a stored JSON snapshot, no topology or data source —
// produces byte-identical output to packing the live Scout: flattening is
// deterministic, so both routes meet at the same arrays.
func TestPackSnapshotConversion(t *testing.T) {
	f := getFixture(t)
	jsonSnap, err := f.scout.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	converted, err := PackSnapshot(jsonSnap)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := f.scout.SnapshotPack()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(converted, direct) {
		t.Fatal("PackSnapshot(json) differs from SnapshotPack() on the same scout")
	}
	if _, err := PackSnapshot([]byte(`{"config":""}`)); err == nil {
		t.Fatal("snapshot without models must not pack")
	}
}

// TestScoutpackRepackIdempotent pins the serving-side property that makes
// in-place fleet conversion safe: packing a pack-restored Scout
// reproduces the original bytes (while the JSON snapshot is refused — the
// pointer trees are gone).
func TestScoutpackRepackIdempotent(t *testing.T) {
	f := getFixture(t)
	pack, err := f.scout.SnapshotPack()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(pack, f.gen.Topology(), f.gen.Telemetry())
	if err != nil {
		t.Fatal(err)
	}
	again, err := restored.SnapshotPack()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pack, again) {
		t.Fatal("repacking a pack-restored scout changed the bytes")
	}
	if _, err := restored.Snapshot(); err == nil {
		t.Fatal("pack-restored scout must refuse the JSON snapshot")
	}
}

// TestScoutpackRejectsCorruption flips and truncates bytes across the
// blob and demands errors: the checksum wall catches payload damage, the
// header checks catch structural damage.
func TestScoutpackRejectsCorruption(t *testing.T) {
	f := getFixture(t)
	pack, err := f.scout.SnapshotPack()
	if err != nil {
		t.Fatal(err)
	}
	// Bit flips at a spread of offsets, including header and deep payload.
	for _, off := range []int{0, 5, 9, 44, 100, len(pack) / 2, len(pack) - 1} {
		blob := append([]byte(nil), pack...)
		blob[off] ^= 0x40
		if _, err := Restore(blob, f.gen.Topology(), f.gen.Telemetry()); err == nil {
			t.Errorf("bit flip at %d restored without error", off)
		}
		if _, err := InspectPack(blob); err == nil {
			t.Errorf("bit flip at %d inspected without error", off)
		}
	}
	// Truncations: torn writes at every growth stage.
	for cut := 0; cut < len(pack); cut += 512 {
		if _, err := InspectPack(pack[:cut]); err == nil {
			t.Errorf("truncation at %d inspected without error", cut)
		}
	}
	// A non-pack blob must answer ErrNotScoutpack so sniffers can fall
	// through to JSON.
	if _, err := parseScoutpack([]byte("not a pack at all")); !errors.Is(err, ErrNotScoutpack) {
		t.Fatalf("want ErrNotScoutpack, got %v", err)
	}
}

// TestInspectPack checks the operator summary against the live scout.
func TestInspectPack(t *testing.T) {
	f := getFixture(t)
	pack, err := f.scout.SnapshotPack()
	if err != nil {
		t.Fatal(err)
	}
	info, err := InspectPack(pack)
	if err != nil {
		t.Fatal(err)
	}
	if info.Bytes != len(pack) || info.Version != scoutpackVersion {
		t.Fatalf("inspect header wrong: %+v", info)
	}
	if info.Trees != f.scout.rf.NumTrees() || info.Nodes != f.scout.rf.NumNodes() {
		t.Fatalf("inspect forest shape wrong: %+v", info)
	}
	if info.Features != len(f.scout.rf.Features()) || info.TrainMeans != len(f.scout.trainMeans) {
		t.Fatalf("inspect layout wrong: %+v", info)
	}
}

// TestScoutSetBatchKernel pins kernel propagation and the quantization
// tolerance at the Scout level: quantized batch predictions agree with
// the exact kernel within 1e-6 on every held-out incident.
func TestScoutSetBatchKernel(t *testing.T) {
	f := getFixture(t)
	pack, err := f.scout.SnapshotPack()
	if err != nil {
		t.Fatal(err)
	}
	s, err := Restore(pack, f.gen.Topology(), f.gen.Telemetry())
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]BatchRequest, 0, 60)
	for _, in := range f.test[:60] {
		reqs = append(reqs, BatchRequest{Title: in.Title, Body: in.Body, Components: in.InitialComponents, Time: in.CreatedAt})
	}
	exact := s.PredictBatch(reqs)
	for _, k := range []forest.BatchKernel{forest.KernelQuant8, forest.KernelQuant16} {
		s.SetBatchKernel(k)
		if got := s.rf.CurrentBatchKernel(); got != k {
			t.Fatalf("kernel did not propagate to routing forest: %v", got)
		}
		quant := s.PredictBatch(reqs)
		for i := range reqs {
			if exact[i].Verdict != quant[i].Verdict {
				t.Fatalf("%v: request %d verdict flipped: %v vs %v", k, i, quant[i].Verdict, exact[i].Verdict)
			}
			if d := math.Abs(exact[i].Confidence - quant[i].Confidence); d > 1e-6 {
				t.Fatalf("%v: request %d confidence drifted by %g", k, i, d)
			}
		}
	}
	s.SetBatchKernel(forest.KernelExact)
}
