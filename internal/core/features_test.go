package core

import (
	"strings"
	"testing"

	"scouts/internal/cloudsim"
	"scouts/internal/topology"
)

func newBuilder(t *testing.T) (*FeatureBuilder, *cloudsim.Generator) {
	t.Helper()
	gen := cloudsim.New(cloudsim.Params{Seed: 1, Days: 10, IncidentsPerDay: 5})
	cfg, err := ParseConfig(DefaultPhyNetConfig)
	if err != nil {
		t.Fatal(err)
	}
	return NewFeatureBuilder(cfg, gen.Topology(), gen.Telemetry()), gen
}

func TestExtractFromText(t *testing.T) {
	fb, _ := newBuilder(t)
	ex := fb.Extract("Problem in c2.dc1", "VM vm3.c2.dc1 on srv2.c2.dc1 cannot reach tor1.c2.dc1", nil)
	if ex.Empty || ex.Excluded {
		t.Fatalf("extraction failed: %+v", ex)
	}
	if got := ex.ByType[topology.TypeVM]; len(got) != 1 || got[0] != "vm3.c2.dc1" {
		t.Fatalf("vm = %v", got)
	}
	if got := ex.ByType[topology.TypeSwitch]; len(got) != 1 {
		t.Fatalf("switch = %v", got)
	}
	// Ancestors expanded: cluster + dc present.
	if got := ex.ByType[topology.TypeCluster]; len(got) != 1 || got[0] != "c2.dc1" {
		t.Fatalf("cluster = %v", got)
	}
	if got := ex.ByType[topology.TypeDC]; len(got) != 1 || got[0] != "dc1" {
		t.Fatalf("dc = %v", got)
	}
}

func TestExtractDependencyExpansion(t *testing.T) {
	fb, gen := newBuilder(t)
	// A VM mention alone must pull in its host server and ToR.
	ex := fb.Extract("t", "trouble with vm1.c1.dc1 only", nil)
	srv := gen.Topology().ServerOfVM("vm1.c1.dc1")
	tor := gen.Topology().ToROfServer(srv)
	found := map[string]bool{}
	for _, c := range ex.All() {
		found[c] = true
	}
	if !found[srv] || !found[tor] {
		t.Fatalf("dependency expansion missing %s/%s: %v", srv, tor, ex.All())
	}
	if ex.Broad {
		t.Fatal("device-level incident should not be broad")
	}
}

func TestExtractBroadVsNarrowVsEmpty(t *testing.T) {
	fb, _ := newBuilder(t)
	broad := fb.Extract("t", "cluster c1.dc1 is degraded", nil)
	if !broad.Broad || broad.Empty {
		t.Fatalf("cluster-only incident should be broad: %+v", broad)
	}
	narrow := fb.Extract("t", "tor1.c1.dc1 rebooted", nil)
	if narrow.Broad || len(narrow.Devices) != 1 {
		t.Fatalf("device incident should be narrow: %+v", narrow)
	}
	empty := fb.Extract("t", "something vague happened", nil)
	if !empty.Empty {
		t.Fatalf("no mentions should be empty: %+v", empty)
	}
}

func TestExtractIgnoresUnknownComponents(t *testing.T) {
	fb, _ := newBuilder(t)
	// Matches the regex but does not exist in the topology.
	ex := fb.Extract("t", "switch tor99.c99.dc9 is down", nil)
	if !ex.Empty {
		t.Fatalf("nonexistent components must be dropped: %v", ex.All())
	}
}

func TestFeatureLayoutStable(t *testing.T) {
	fb1, gen := newBuilder(t)
	cfg, _ := ParseConfig(DefaultPhyNetConfig)
	fb2 := NewFeatureBuilder(cfg, gen.Topology(), gen.Telemetry())
	a, b := fb1.FeatureNames(), fb2.FeatureNames()
	if len(a) != len(b) {
		t.Fatal("layout not stable")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("layout differs at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestClassTagMerging(t *testing.T) {
	fb, _ := newBuilder(t)
	// linkdrop + switchdrop share class "drops": exactly one merged group.
	var dropGroups []string
	for _, g := range fb.Groups() {
		if strings.Contains(g, "drop") {
			dropGroups = append(dropGroups, g)
		}
	}
	if len(dropGroups) != 1 || dropGroups[0] != "drops" {
		t.Fatalf("class merging failed: %v", dropGroups)
	}
	// And the merged group owns feature slots.
	if len(fb.GroupSlots("drops")) == 0 {
		t.Fatal("merged group has no slots")
	}
}

func TestFeaturizeDetectsAnomaly(t *testing.T) {
	fb, gen := newBuilder(t)
	tel := gen.Telemetry()
	ex := fb.Extract("t", "problem near tor1.c1.dc1 in c1.dc1", nil)

	healthy := fb.Featurize(ex, 100)
	tel.AddAnomaly(cloudsim.Anomaly{
		Component: "tor1.c1.dc1", Start: 198, End: 201,
		Effects: []cloudsim.Effect{{Dataset: cloudsim.DSIfCounters, MeanShift: 50}},
	})
	faulty := fb.Featurize(ex, 200)

	names := fb.FeatureNames()
	idx := -1
	for i, n := range names {
		if n == "switch.ifcounters.max" {
			idx = i
		}
	}
	if idx < 0 {
		t.Fatal("switch.ifcounters.max not in layout")
	}
	if faulty[idx] <= healthy[idx]+1 {
		t.Fatalf("anomaly not visible in features: healthy %v faulty %v", healthy[idx], faulty[idx])
	}
}

func TestFeaturizeComponentCounts(t *testing.T) {
	fb, _ := newBuilder(t)
	ex := fb.Extract("t", "tor1.c1.dc1 and tor2.c1.dc1 look bad", nil)
	x := fb.Featurize(ex, 100)
	names := fb.FeatureNames()
	for i, n := range names {
		if n == "switch.ncomponents" && x[i] != 2 {
			t.Fatalf("switch count = %v, want 2", x[i])
		}
		if n == "cluster.ncomponents" && x[i] != 1 {
			t.Fatalf("cluster count = %v, want 1", x[i])
		}
	}
}

func TestCPDInputShapes(t *testing.T) {
	fb, _ := newBuilder(t)
	narrow := fb.Extract("t", "tor1.c1.dc1 alarms", nil)
	in := fb.CPDInput(narrow, 100)
	if in.Broad {
		t.Fatal("narrow extraction produced broad input")
	}
	if len(in.Series[cloudsim.DSIfCounters]) == 0 {
		t.Fatal("narrow input missing device series")
	}
	// Doubled window so the change point sits inside the series.
	if n := len(in.Series[cloudsim.DSIfCounters][0]); n != 40 {
		t.Fatalf("series length %d, want 40 (2x lookback at 6-min ticks)", n)
	}

	broad := fb.Extract("t", "cluster c1.dc1 degraded", nil)
	bin := fb.CPDInput(broad, 100)
	if !bin.Broad {
		t.Fatal("broad extraction should produce broad input")
	}
	if len(bin.Series[cloudsim.DSPingmesh]) == 0 {
		t.Fatal("broad input should sample the cluster's servers")
	}
}

func TestExcludedComponentDropped(t *testing.T) {
	gen := cloudsim.New(cloudsim.Params{Seed: 2, Days: 10, IncidentsPerDay: 5})
	cfg, err := ParseConfig("TEAM PhyNet;\nlet switch = <\\b(?:tor|agg)\\d+\\.c\\d+\\.dc\\d+\\b>;\nEXCLUDE switch = <agg.*>;")
	if err != nil {
		t.Fatal(err)
	}
	fb := NewFeatureBuilder(cfg, gen.Topology(), gen.Telemetry())
	ex := fb.Extract("t", "agg1.c1.dc1 and tor1.c1.dc1", nil)
	for _, c := range ex.All() {
		if strings.HasPrefix(c, "agg") {
			t.Fatalf("excluded component leaked: %v", ex.All())
		}
	}
	if len(ex.ByType[topology.TypeSwitch]) != 1 {
		t.Fatalf("switches = %v", ex.ByType[topology.TypeSwitch])
	}
}
