package core

import (
	"strings"
	"testing"

	"scouts/internal/cloudsim"
	"scouts/internal/incident"
	"scouts/internal/ml/forest"
)

// trainedScout builds a PhyNet Scout over a synthetic trace and returns it
// with the train/test incident split. Shared across tests (expensive).
type fixture struct {
	scout *Scout
	gen   *cloudsim.Generator
	train []*incident.Incident
	test  []*incident.Incident
}

var sharedFixture *fixture

func getFixture(t *testing.T) *fixture {
	t.Helper()
	if sharedFixture != nil {
		return sharedFixture
	}
	gen := cloudsim.New(cloudsim.Params{Seed: 42, Days: 120, IncidentsPerDay: 10})
	log := gen.Generate()
	cfg, err := ParseConfig(DefaultPhyNetConfig)
	if err != nil {
		t.Fatal(err)
	}
	// Paper-style random split by time parity keeps it simple and
	// deterministic here; the experiment harness uses the §7 split.
	var train, test []*incident.Incident
	for i, in := range log.Incidents {
		if i%2 == 0 {
			train = append(train, in)
		} else {
			test = append(test, in)
		}
	}
	scout, err := Train(TrainOptions{
		Config:    cfg,
		Topology:  gen.Topology(),
		Source:    gen.Telemetry(),
		Incidents: train,
		Forest:    forest.Params{NumTrees: 60, MaxDepth: 14, Seed: 7},
		Seed:      7,
	})
	if err != nil {
		t.Fatal(err)
	}
	sharedFixture = &fixture{scout: scout, gen: gen, train: train, test: test}
	return sharedFixture
}

func TestScoutAccuracyOnHeldOut(t *testing.T) {
	f := getFixture(t)
	c := f.scout.Evaluate(f.test)
	t.Logf("held-out confusion: %s over %d incidents", c.String(), c.Total())
	if c.F1() < 0.9 {
		t.Fatalf("PhyNet Scout F1 = %v, want >= 0.9 (paper: 0.98)", c.F1())
	}
	if c.Precision() < 0.88 || c.Recall() < 0.88 {
		t.Fatalf("precision/recall too low: %s", c.String())
	}
}

func TestPredictionShape(t *testing.T) {
	f := getFixture(t)
	for _, in := range f.test[:50] {
		p := f.scout.PredictIncident(in)
		switch p.Verdict {
		case VerdictResponsible, VerdictNotResponsible:
			if p.Confidence < 0.5 || p.Confidence > 1 {
				t.Fatalf("confidence %v out of range", p.Confidence)
			}
			if p.Explanation == "" {
				t.Fatal("model verdicts must carry an explanation")
			}
			if len(p.Components) == 0 {
				t.Fatal("model verdicts must list the components examined")
			}
		case VerdictFallback:
			if p.Usable() {
				t.Fatal("fallback should not be usable")
			}
		}
	}
}

func TestExplanationOmitsComponentCounts(t *testing.T) {
	f := getFixture(t)
	for _, in := range f.test[:80] {
		p := f.scout.PredictIncident(in)
		if strings.Contains(p.Explanation, "ncomponents") {
			t.Fatalf("explanation leaks count features (§8): %s", p.Explanation)
		}
	}
}

func TestExcludeRuleShortCircuits(t *testing.T) {
	f := getFixture(t)
	p := f.scout.Predict("planned maintenance for rack", "tor1.c1.dc1 will be upgraded", nil, 1000)
	if p.Verdict != VerdictExcluded || p.Responsible {
		t.Fatalf("exclusion rule did not fire: %+v", p)
	}
}

func TestNoComponentsFallsBack(t *testing.T) {
	f := getFixture(t)
	p := f.scout.Predict("Customer cannot log in", "a customer reports being unable to log in to their account", nil, 1000)
	if p.Verdict != VerdictFallback {
		t.Fatalf("component gate did not fire: %+v", p)
	}
}

func TestMentionedComponentsAugmentText(t *testing.T) {
	f := getFixture(t)
	// Text has no names; the structured mention list supplies them.
	p := f.scout.Predict("Connectivity problem", "a tenant reports connection resets", []string{"tor1.c1.dc1"}, 1000)
	if p.Verdict == VerdictFallback {
		t.Fatal("structured mentions should rescue extraction")
	}
	found := false
	for _, c := range p.Components {
		if c == "tor1.c1.dc1" {
			found = true
		}
	}
	if !found {
		t.Fatalf("mentioned component missing from %v", p.Components)
	}
}

func TestTrainErrors(t *testing.T) {
	f := getFixture(t)
	cfg, _ := ParseConfig(DefaultPhyNetConfig)
	if _, err := Train(TrainOptions{Config: cfg, Topology: f.gen.Topology(), Source: f.gen.Telemetry()}); err != ErrNoTrainingIncidents {
		t.Fatalf("want ErrNoTrainingIncidents, got %v", err)
	}
	if _, err := Train(TrainOptions{}); err == nil {
		t.Fatal("missing required options should error")
	}
}

func TestEvaluateSkipsFallback(t *testing.T) {
	f := getFixture(t)
	// An incident with no components must not count toward the confusion.
	in := &incident.Incident{
		ID: "X", Title: "vague", Body: "nothing specific",
		OwnerLabel: "PhyNet", CreatedAt: 500,
	}
	c := f.scout.Evaluate([]*incident.Incident{in})
	if c.Total() != 0 {
		t.Fatalf("fallback incidents must be skipped, got %s", c.String())
	}
}

func TestTopFeaturesNonEmpty(t *testing.T) {
	f := getFixture(t)
	top := f.scout.TopFeatures(5)
	if len(top) != 5 {
		t.Fatalf("top features: %v", top)
	}
}

func TestImputationOnDeprecatedDataset(t *testing.T) {
	f := getFixture(t)
	tel := f.gen.Telemetry()
	// Deprecate pingmesh; predictions must still work and accuracy must
	// not collapse (Figure 9 behaviour).
	tel.Deprecate("pingmesh")
	defer tel.Restore("pingmesh")
	c := f.scout.Evaluate(f.test)
	if c.F1() < 0.8 {
		t.Fatalf("losing one monitor should degrade gracefully, F1 = %v", c.F1())
	}
}

func TestFeatureLayoutExcludesVM(t *testing.T) {
	f := getFixture(t)
	for _, name := range f.scout.FeatureNames() {
		if strings.HasPrefix(name, "vm.") {
			t.Fatalf("PhyNet Scout should have no VM features (§5.2), found %s", name)
		}
	}
}
