package core

import "sync"

// FeatureCache memoizes per-incident extraction results, feature vectors
// and CPD+ vectors across retraining rounds. The retraining experiments
// (§7.3) rebuild the Scout dozens of times over overlapping windows of the
// same trace; featurization — not model fitting — dominates that cost, and
// it is a pure function of (incident, configuration, data source), so it
// is safe to reuse as long as those stay fixed.
//
// A FeatureCache must only ever be used with one (Config, Topology,
// DataSource) combination; mixing layouts corrupts results.
type FeatureCache struct {
	mu sync.Mutex
	m  map[string]*cacheEntry
}

type cacheEntry struct {
	ex   Extraction
	x    []float64
	cpdX []float64 // nil until a CPD+ vector is first needed
}

// NewFeatureCache creates an empty cache.
func NewFeatureCache() *FeatureCache {
	return &FeatureCache{m: map[string]*cacheEntry{}}
}

// Len returns the number of cached incidents.
func (c *FeatureCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

func (c *FeatureCache) get(id string) (*cacheEntry, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[id]
	return e, ok
}

func (c *FeatureCache) put(id string, e *cacheEntry) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[id] = e
}

func (c *FeatureCache) setCPD(id string, vec []float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[id]; ok {
		e.cpdX = vec
	}
}
