package core

import (
	"hash/maphash"
	"sync"
)

// FeatureCache memoizes per-incident extraction results, feature vectors
// and CPD+ vectors across retraining rounds. The retraining experiments
// (§7.3) rebuild the Scout dozens of times over overlapping windows of the
// same trace; featurization — not model fitting — dominates that cost, and
// it is a pure function of (incident, configuration, data source), so it
// is safe to reuse as long as those stay fixed.
//
// The cache is safe for concurrent use: it is sharded by incident ID so
// parallel featurization workers do not serialize on a single lock, and
// its accessors exchange entry *values*, never pointers into the shard
// maps — all mutation goes through the locked setters. A FeatureCache must
// only ever be used with one (Config, Topology, DataSource) combination;
// mixing layouts corrupts results.
type FeatureCache struct {
	shards [cacheShards]cacheShard
}

// cacheShards is a power of two comfortably above typical worker counts so
// shard collisions under parallel featurization stay rare.
const cacheShards = 32

var cacheHashSeed = maphash.MakeSeed()

type cacheShard struct {
	mu sync.RWMutex
	m  map[string]*cacheEntry
}

// cacheEntry is handled by value outside this file; the slices and the
// Extraction map it carries are treated as immutable once stored.
type cacheEntry struct {
	ex   Extraction
	x    []float64
	cpdX []float64 // nil until a CPD+ vector is first needed
}

// NewFeatureCache creates an empty cache.
func NewFeatureCache() *FeatureCache {
	c := &FeatureCache{}
	for i := range c.shards {
		c.shards[i].m = map[string]*cacheEntry{}
	}
	return c
}

func (c *FeatureCache) shard(id string) *cacheShard {
	return &c.shards[maphash.String(cacheHashSeed, id)&(cacheShards-1)]
}

// Len returns the number of cached incidents.
func (c *FeatureCache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// get returns a snapshot of the entry for id. The returned value shares
// its slices with the cache, so callers must not modify them — new state
// is published only through put and setCPD.
func (c *FeatureCache) get(id string) (cacheEntry, bool) {
	if c == nil {
		return cacheEntry{}, false
	}
	s := c.shard(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	if e, ok := s.m[id]; ok {
		return *e, true
	}
	return cacheEntry{}, false
}

// put stores an entry for id. The first writer wins when two workers
// featurize the same incident concurrently: featurization is deterministic,
// so both candidates are identical and keeping the incumbent preserves any
// CPD+ vector another goroutine already attached to it.
func (c *FeatureCache) put(id string, e cacheEntry) {
	if c == nil {
		return
	}
	s := c.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.m[id]; exists {
		return
	}
	stored := e
	s.m[id] = &stored
}

// setCPD attaches a CPD+ vector to an existing entry and returns the
// canonical vector: the first one stored wins, so concurrent computers of
// the same (deterministic) vector converge on one slice.
func (c *FeatureCache) setCPD(id string, vec []float64) []float64 {
	if c == nil {
		return vec
	}
	s := c.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.m[id]
	if !ok {
		return vec
	}
	if e.cpdX == nil {
		e.cpdX = vec
	}
	return e.cpdX
}
