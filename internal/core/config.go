// Package core implements the paper's primary contribution: the Scout
// framework (§4–§5). A Scout is a per-team, ML-assisted gate-keeper that
// takes an incident plus the team's monitoring data and answers "is this
// team responsible?" with a confidence score and an explanation.
//
// The framework takes a configuration file (the operator's only required
// input), extracts the components an incident implicates, pulls the
// relevant monitoring data, builds fixed-length per-component-type feature
// vectors, and routes each incident through a model selector that chooses
// between a supervised random forest (most incidents) and the unsupervised
// CPD+ detector (new or rare incidents).
package core

import (
	"bufio"
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"scouts/internal/topology"
)

// ExcludeRule is one EXCLUDE statement of the configuration (§5.3):
// incidents or components that are explicitly out of the team's scope.
type ExcludeRule struct {
	// Field is "TITLE", "BODY", or a component type ("switch", ...).
	Field string
	Re    *regexp.Regexp
}

// MonitoringRef selects one dataset from the data source, optionally
// overriding its class tag.
type MonitoringRef struct {
	Name  string
	Class string
}

// Config is the parsed Scout configuration file.
type Config struct {
	// Source is the original configuration text (retained so trained
	// Scouts can be snapshotted and restored elsewhere).
	Source string
	// Team is the owning team's name.
	Team string
	// LookbackHours is T in the paper's [t-T, t] feature window (§5.2;
	// the evaluation uses two hours).
	LookbackHours float64
	// Extractors map component types to the regular expressions that find
	// them in incident text (§5.1).
	Extractors map[topology.ComponentType]*regexp.Regexp
	// Monitoring lists the datasets this Scout uses. Empty means "every
	// dataset the data source advertises".
	Monitoring []MonitoringRef
	// Excludes are the out-of-scope rules.
	Excludes []ExcludeRule
	// MaxDevicesNarrow is the §5.2.2 "handful of devices" threshold: at
	// most this many device-level components keeps an incident "narrow"
	// for CPD+ (default 5).
	MaxDevicesNarrow int
}

// ParseConfig parses the Scout configuration DSL:
//
//	TEAM PhyNet;
//	LOOKBACK 2h;
//	let vm      = <vm\d+\.c\d+\.dc\d+>;
//	let server  = <srv\d+\.c\d+\.dc\d+>;
//	let switch  = <(?:tor|agg)\d+\.c\d+\.dc\d+>;
//	let cluster = <c\d+\.dc\d+>;
//	let dc      = <dc\d+>;
//	MONITORING pingmesh   = CREATE_MONITORING(store://phynet/pingmesh, {component=server}, TIME_SERIES, LATENCY);
//	MONITORING linkdrop   = CREATE_MONITORING(store://phynet/linkdrop, {component=switch}, EVENT, DROPS, class=drops);
//	EXCLUDE switch = <decom\d+.*>;
//	EXCLUDE TITLE  = <planned maintenance>;
//
// Lines starting with '#' are comments. Statements end with ';'.
func ParseConfig(src string) (*Config, error) {
	cfg := &Config{
		Source:           src,
		LookbackHours:    2,
		Extractors:       map[topology.ComponentType]*regexp.Regexp{},
		MaxDevicesNarrow: 5,
	}
	sc := bufio.NewScanner(strings.NewReader(src))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		line = strings.TrimSuffix(line, ";")
		if err := cfg.parseLine(line); err != nil {
			return nil, fmt.Errorf("config line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if cfg.Team == "" {
		return nil, fmt.Errorf("config: missing TEAM statement")
	}
	if len(cfg.Extractors) == 0 {
		return nil, fmt.Errorf("config: at least one 'let <type> = <regex>' extractor is required")
	}
	return cfg, nil
}

func (c *Config) parseLine(line string) error {
	switch {
	case strings.HasPrefix(line, "TEAM "):
		c.Team = strings.TrimSpace(strings.TrimPrefix(line, "TEAM "))
		return nil
	case strings.HasPrefix(line, "LOOKBACK "):
		v := strings.TrimSpace(strings.TrimPrefix(line, "LOOKBACK "))
		v = strings.TrimSuffix(v, "h")
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f <= 0 {
			return fmt.Errorf("bad LOOKBACK %q (want e.g. '2h')", v)
		}
		c.LookbackHours = f
		return nil
	case strings.HasPrefix(line, "NARROW_DEVICES "):
		v := strings.TrimSpace(strings.TrimPrefix(line, "NARROW_DEVICES "))
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return fmt.Errorf("bad NARROW_DEVICES %q", v)
		}
		c.MaxDevicesNarrow = n
		return nil
	case strings.HasPrefix(line, "let "):
		return c.parseLet(strings.TrimPrefix(line, "let "))
	case strings.HasPrefix(line, "MONITORING "):
		return c.parseMonitoring(strings.TrimPrefix(line, "MONITORING "))
	case strings.HasPrefix(line, "EXCLUDE "):
		return c.parseExclude(strings.TrimPrefix(line, "EXCLUDE "))
	default:
		return fmt.Errorf("unrecognized statement %q", line)
	}
}

// splitAssign splits "name = value" and unwraps <...> regex delimiters.
func splitAssign(s string) (name, value string, err error) {
	i := strings.Index(s, "=")
	if i < 0 {
		return "", "", fmt.Errorf("expected '=' in %q", s)
	}
	name = strings.TrimSpace(s[:i])
	value = strings.TrimSpace(s[i+1:])
	if strings.HasPrefix(value, "<") && strings.HasSuffix(value, ">") {
		value = value[1 : len(value)-1]
	}
	if name == "" || value == "" {
		return "", "", fmt.Errorf("empty name or value in %q", s)
	}
	return name, value, nil
}

func (c *Config) parseLet(rest string) error {
	name, value, err := splitAssign(rest)
	if err != nil {
		return err
	}
	typ := topology.ComponentType(strings.ToLower(name))
	valid := false
	for _, t := range topology.AllTypes {
		if typ == t {
			valid = true
		}
	}
	if !valid {
		return fmt.Errorf("unknown component type %q", name)
	}
	re, err := regexp.Compile(value)
	if err != nil {
		return fmt.Errorf("bad regex for %s: %w", name, err)
	}
	c.Extractors[typ] = re
	return nil
}

func (c *Config) parseMonitoring(rest string) error {
	name, value, err := splitAssign(rest)
	if err != nil {
		return err
	}
	if !strings.HasPrefix(value, "CREATE_MONITORING(") || !strings.HasSuffix(value, ")") {
		return fmt.Errorf("MONITORING %s: expected CREATE_MONITORING(...)", name)
	}
	args := value[len("CREATE_MONITORING(") : len(value)-1]
	ref := MonitoringRef{Name: name}
	for _, a := range strings.Split(args, ",") {
		a = strings.TrimSpace(a)
		if strings.HasPrefix(a, "class=") {
			ref.Class = strings.TrimPrefix(a, "class=")
		}
	}
	c.Monitoring = append(c.Monitoring, ref)
	return nil
}

func (c *Config) parseExclude(rest string) error {
	name, value, err := splitAssign(rest)
	if err != nil {
		return err
	}
	field := strings.ToUpper(name)
	if field != "TITLE" && field != "BODY" {
		// Component-type exclusion; keep the lower-case type name.
		field = strings.ToLower(name)
		typ := topology.ComponentType(field)
		valid := false
		for _, t := range topology.AllTypes {
			if typ == t {
				valid = true
			}
		}
		if !valid {
			return fmt.Errorf("EXCLUDE target %q is neither TITLE, BODY nor a component type", name)
		}
	}
	re, err := regexp.Compile(value)
	if err != nil {
		return fmt.Errorf("bad EXCLUDE regex: %w", err)
	}
	c.Excludes = append(c.Excludes, ExcludeRule{Field: field, Re: re})
	return nil
}

// UsesDataset reports whether the config selects the dataset (an empty
// Monitoring list selects everything).
func (c *Config) UsesDataset(name string) bool {
	if len(c.Monitoring) == 0 {
		return true
	}
	for _, m := range c.Monitoring {
		if m.Name == name {
			return true
		}
	}
	return false
}

// ClassOverride returns the class tag override for a dataset ("" if none).
func (c *Config) ClassOverride(name string) string {
	for _, m := range c.Monitoring {
		if m.Name == name {
			return m.Class
		}
	}
	return ""
}

// DefaultPhyNetConfig is the configuration of the deployed PhyNet Scout
// over the synthetic cloud's naming scheme and the twelve Table 2 datasets.
const DefaultPhyNetConfig = `
# PhyNet Scout configuration (§5.1, §6).
TEAM PhyNet;
LOOKBACK 2h;

let vm      = <\bvm\d+\.c\d+\.dc\d+\b>;
let server  = <\bsrv\d+\.c\d+\.dc\d+\b>;
let switch  = <\b(?:tor|agg)\d+\.c\d+\.dc\d+\b>;
let cluster = <\bc\d+\.dc\d+\b>;
let dc      = <\bdc\d+\b>;

MONITORING pingmesh    = CREATE_MONITORING(store://phynet/pingmesh,    {component=server},  TIME_SERIES, LATENCY);
MONITORING linkdrop    = CREATE_MONITORING(store://phynet/linkdrop,   {component=switch},  EVENT, DROPS, class=drops);
MONITORING switchdrop  = CREATE_MONITORING(store://phynet/switchdrop, {component=switch},  EVENT, DROPS, class=drops);
MONITORING canary      = CREATE_MONITORING(store://phynet/canary,     {component=cluster}, TIME_SERIES, REACHABILITY);
MONITORING reboots     = CREATE_MONITORING(store://phynet/reboots,    {component=device},  EVENT, REBOOTS);
MONITORING linkloss    = CREATE_MONITORING(store://phynet/linkloss,   {component=switch},  TIME_SERIES, LOSS);
MONITORING fcs         = CREATE_MONITORING(store://phynet/fcs,        {component=switch},  EVENT, CORRUPTION);
MONITORING syslog      = CREATE_MONITORING(store://phynet/syslog,     {component=switch},  EVENT, SYSLOG);
MONITORING pfc         = CREATE_MONITORING(store://phynet/pfc,        {component=switch},  TIME_SERIES, PFC);
MONITORING ifcounters  = CREATE_MONITORING(store://phynet/ifcounters, {component=switch},  TIME_SERIES, DROPS);
MONITORING temperature = CREATE_MONITORING(store://phynet/temperature,{component=device},  TIME_SERIES, TEMPERATURE);
MONITORING cpu         = CREATE_MONITORING(store://phynet/cpu,        {component=device},  TIME_SERIES, CPU_UTIL);

# Decommissioned switches have been handed to the DC-ops team (§5.3).
EXCLUDE switch = <decom\d+.*>;
EXCLUDE TITLE  = <planned maintenance>;
`
