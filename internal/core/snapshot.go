package core

import (
	"encoding/json"
	"errors"
	"fmt"

	"scouts/internal/ml/cpd"
	"scouts/internal/ml/forest"
	"scouts/internal/monitoring"
	"scouts/internal/text"
	"scouts/internal/topology"
)

// snapshotDTO is the serialized form of a trained Scout: everything the
// online serving component needs to answer queries (§6: the offline
// component trains, persists to highly-available storage, and the online
// component serves).
type snapshotDTO struct {
	ConfigSource string         `json:"config"`
	Forest       *forest.Forest `json:"forest"`
	CPD          *cpd.Plus      `json:"cpd"`
	Selector     *selectorDTO   `json:"selector,omitempty"`
	TrainMeans   []float64      `json:"train_means"`
	Detector     cpd.Params     `json:"detector"`
}

type selectorDTO struct {
	Words     []string       `json:"words"`
	Threshold float64        `json:"threshold"`
	RF        *forest.Forest `json:"rf,omitempty"`
}

// ErrNotSnapshottable is returned when the Scout cannot be serialized
// (custom decider models, or a Config built without source text).
var ErrNotSnapshottable = errors.New("core: scout is not snapshottable")

// Snapshot serializes a trained Scout to JSON. Only the default selector
// is serializable; a Scout with a swapped decider returns
// ErrNotSnapshottable.
func (s *Scout) Snapshot() ([]byte, error) {
	if s.cfg.Source == "" {
		return nil, fmt.Errorf("%w: configuration has no source text", ErrNotSnapshottable)
	}
	dto := snapshotDTO{
		ConfigSource: s.cfg.Source,
		Forest:       s.rf,
		CPD:          s.cpdPlus,
		TrainMeans:   s.trainMeans,
		Detector:     s.detector,
	}
	switch sel := s.selector.(type) {
	case *Selector:
		if sel.rf != nil {
			dto.Selector = &selectorDTO{
				Words:     sel.words.Names(),
				Threshold: sel.threshold,
				RF:        sel.rf,
			}
		}
	default:
		return nil, fmt.Errorf("%w: custom decider %T", ErrNotSnapshottable, s.selector)
	}
	return json.Marshal(dto)
}

// Restore rebuilds a Scout from a snapshot against a (possibly different)
// topology and data source with the same monitoring registry. Both
// snapshot formats are accepted: the format is sniffed from the leading
// bytes, so callers stay format-agnostic — a scoutpack (binary) restores
// through the zero-re-derivation path, anything else through JSON.
func Restore(data []byte, topo *topology.Topology, source monitoring.DataSource) (*Scout, error) {
	if IsScoutpack(data) {
		return restorePack(data, topo, source)
	}
	var dto snapshotDTO
	if err := json.Unmarshal(data, &dto); err != nil {
		return nil, fmt.Errorf("core: decoding snapshot: %w", err)
	}
	if dto.Forest == nil || dto.CPD == nil {
		return nil, errors.New("core: snapshot missing models")
	}
	cfg, err := ParseConfig(dto.ConfigSource)
	if err != nil {
		return nil, fmt.Errorf("core: snapshot config: %w", err)
	}
	s := &Scout{
		cfg:        cfg,
		rf:         dto.Forest,
		cpdPlus:    dto.CPD,
		trainMeans: dto.TrainMeans,
		detector:   dto.Detector,
	}
	s.fb = NewFeatureBuilder(cfg, topo, source)
	if got, want := len(s.fb.FeatureNames()), len(dto.Forest.Features()); got != want {
		return nil, fmt.Errorf("core: snapshot layout (%d features) does not match data source (%d)", want, got)
	}
	if dto.Selector != nil {
		s.selector = &Selector{
			words:     text.NewWordCounter(dto.Selector.Words),
			rf:        dto.Selector.RF,
			threshold: dto.Selector.Threshold,
		}
	} else {
		s.selector = &Selector{}
	}
	return s, nil
}
