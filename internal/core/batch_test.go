package core

import (
	"reflect"
	"testing"

	"scouts/internal/incident"
)

// TestPredictBatchMatchesSingle pins the batch contract: PredictBatch
// answers exactly — verdict, confidence, components, explanation — what
// Predict answers per item, across all model paths (exclude rule,
// component-gate fallback, CPD+ and RF).
func TestPredictBatchMatchesSingle(t *testing.T) {
	f := getFixture(t)
	ins := f.test[:120]
	// Append gate-exercising synthetics so the batch mixes every path.
	ins = append(ins,
		&incident.Incident{ID: "excl", Title: "planned maintenance for rack", Body: "tor1.c1.dc1 will be upgraded", CreatedAt: 1000},
		&incident.Incident{ID: "empty", Title: "Customer cannot log in", Body: "nothing specific", CreatedAt: 1000},
	)
	batch := f.scout.PredictIncidentBatch(ins)
	if len(batch) != len(ins) {
		t.Fatalf("batch answered %d of %d items", len(batch), len(ins))
	}
	for i, in := range ins {
		single := f.scout.PredictIncident(in)
		if !reflect.DeepEqual(batch[i], single) {
			t.Fatalf("incident %s: batch %+v != single %+v", in.ID, batch[i], single)
		}
	}
	if out := f.scout.PredictBatch(nil); len(out) != 0 {
		t.Fatalf("empty batch should answer empty, got %v", out)
	}
}

// TestPredictBatchConcurrent exercises the vector pool under concurrent
// batches (run under -race): pooled vectors must never be shared between
// in-flight predictions.
func TestPredictBatchConcurrent(t *testing.T) {
	f := getFixture(t)
	ins := f.test[:60]
	want := f.scout.PredictIncidentBatch(ins)
	done := make(chan []Prediction, 4)
	for g := 0; g < 4; g++ {
		go func() { done <- f.scout.PredictIncidentBatch(ins) }()
	}
	for g := 0; g < 4; g++ {
		got := <-done
		if !reflect.DeepEqual(got, want) {
			t.Fatal("concurrent batches diverged")
		}
	}
}

// TestPredictRFBoundaryGuard covers the Scout-boundary dimension check: a
// cached vector from a different feature layout defers to legacy routing
// instead of panicking in tree traversal.
func TestPredictRFBoundaryGuard(t *testing.T) {
	f := getFixture(t)
	p := f.scout.predictRF([]float64{1, 2, 3}, Extraction{})
	if p.Verdict != VerdictFallback || p.Usable() {
		t.Fatalf("mismatched vector should fall back, got %+v", p)
	}
	if p.Explanation == "" {
		t.Fatal("boundary rejection should explain itself")
	}
}
