package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"scouts/internal/cloudsim"
)

func TestFeatureCacheNilSafe(t *testing.T) {
	var c *FeatureCache
	if _, ok := c.get("x"); ok {
		t.Fatal("nil cache should miss")
	}
	c.put("x", cacheEntry{x: []float64{1}})
	vec := []float64{2}
	if got := c.setCPD("x", vec); &got[0] != &vec[0] {
		t.Fatal("nil cache setCPD should hand back the caller's vector")
	}
	if c.Len() != 0 {
		t.Fatal("nil cache should be empty")
	}
}

func TestFeatureCacheFirstWriterWins(t *testing.T) {
	c := NewFeatureCache()
	c.put("a", cacheEntry{x: []float64{1}})
	c.setCPD("a", []float64{9})
	// A second put of the same id (a concurrent featurizer losing the race)
	// must not clobber the incumbent or its attached CPD+ vector.
	c.put("a", cacheEntry{x: []float64{1}})
	e, ok := c.get("a")
	if !ok || e.cpdX == nil || e.cpdX[0] != 9 {
		t.Fatalf("incumbent entry lost its CPD vector: %+v ok=%v", e, ok)
	}
	// setCPD is likewise first-write-wins and returns the canonical slice.
	if got := c.setCPD("a", []float64{7}); got[0] != 9 {
		t.Fatalf("setCPD overwrote the canonical vector: %v", got)
	}
}

// TestFeatureCacheConcurrent hammers one cache from many goroutines with
// overlapping ids; run under -race this is the regression test for the
// unsynchronized map the cache used to be.
func TestFeatureCacheConcurrent(t *testing.T) {
	c := NewFeatureCache()
	const (
		goroutines = 16
		ids        = 100
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < ids; i++ {
				id := fmt.Sprintf("incident-%d", i)
				// The stored value is a pure function of the id, so every
				// writer proposes the same entry — as in real featurization.
				c.put(id, cacheEntry{x: []float64{float64(i)}})
				if e, ok := c.get(id); ok && e.x[0] != float64(i) {
					t.Errorf("id %s holds x=%v", id, e.x)
					return
				}
				canon := c.setCPD(id, []float64{float64(i), float64(g)})
				if canon[0] != float64(i) {
					t.Errorf("id %s canonical cpd=%v", id, canon)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() != ids {
		t.Fatalf("cache holds %d entries, want %d", c.Len(), ids)
	}
	// All goroutines must have converged on one canonical CPD vector per id.
	for i := 0; i < ids; i++ {
		e, ok := c.get(fmt.Sprintf("incident-%d", i))
		if !ok || e.cpdX == nil {
			t.Fatalf("incident-%d missing cpd vector", i)
		}
	}
}

// TestPredictCachedConcurrent runs many concurrent PredictCached callers
// over one shared cache (the serving/replay hot path) and checks every
// parallel answer against a sequential baseline. Under -race this covers
// the old bug where PredictCached wrote e.cpdX on a shared entry without
// holding the cache lock.
func TestPredictCachedConcurrent(t *testing.T) {
	f := getFixture(t)
	ins := f.test[:120]
	cache := NewFeatureCache()
	want := make([]Prediction, len(ins))
	for i, in := range ins {
		want[i] = f.scout.PredictCached(in, cache)
	}

	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, in := range ins {
				got := f.scout.PredictCached(in, cache)
				if got.Verdict != want[i].Verdict || got.Responsible != want[i].Responsible ||
					got.Confidence != want[i].Confidence {
					t.Errorf("incident %s: concurrent %+v != sequential %+v", in.ID, got, want[i])
					return
				}
			}
		}()
	}
	wg.Wait()

	// A second cold cache must reproduce the same answers: caching is an
	// optimization, never an input.
	fresh := NewFeatureCache()
	for i, in := range ins {
		got := f.scout.PredictCached(in, fresh)
		if got.Verdict != want[i].Verdict || got.Confidence != want[i].Confidence {
			t.Fatalf("incident %s: cold-cache prediction differs", in.ID)
		}
	}
}

// TestTrainWorkersSnapshotIdentical is the tentpole determinism guarantee:
// training with one worker and with eight must produce byte-identical
// snapshots (seeds are pre-drawn in tree order, importances merged in tree
// order, CPD+ examples selected sequentially).
func TestTrainWorkersSnapshotIdentical(t *testing.T) {
	gen := cloudsim.New(cloudsim.Params{Seed: 3, Days: 40, IncidentsPerDay: 8})
	log := gen.Generate()
	cfg, err := ParseConfig(DefaultPhyNetConfig)
	if err != nil {
		t.Fatal(err)
	}
	train := func(workers int) []byte {
		t.Helper()
		s, err := Train(TrainOptions{
			Config:    cfg,
			Topology:  gen.Topology(),
			Source:    gen.Telemetry(),
			Incidents: log.Incidents,
			Seed:      11,
			Workers:   workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		snap, err := s.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		return snap
	}
	seq := train(1)
	par := train(8)
	if !bytes.Equal(seq, par) {
		t.Fatalf("snapshots differ between workers=1 (%d bytes) and workers=8 (%d bytes)",
			len(seq), len(par))
	}
}

// TestEvaluateWorkersIdentical checks the evaluation fan-out: the confusion
// matrix must not depend on the worker count.
func TestEvaluateWorkersIdentical(t *testing.T) {
	f := getFixture(t)
	seq := f.scout.EvaluateWorkers(f.test, 1)
	par := f.scout.EvaluateWorkers(f.test, 8)
	if seq != par {
		t.Fatalf("confusion differs: workers=1 %s vs workers=8 %s", seq.String(), par.String())
	}
}
