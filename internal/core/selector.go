package core

import (
	"fmt"
	"math/rand"

	"scouts/internal/ml/forest"
	"scouts/internal/ml/mlcore"
	"scouts/internal/text"
)

// Selector is the model selector of §5.3. After exclusion rules and the
// component gate have run, it decides — per incident — whether the
// supervised random forest can be trusted or whether the incident looks
// "new or rare" and should go to the unsupervised CPD+ path instead.
//
// It is itself a learned model (meta-learning [65]): a random forest over
// meta-features built from the important words of the incident text and
// their frequencies ([58]). It is trained on a held-out slice of the
// training set, labelled by whether a preliminary RF classified each
// incident correctly; it is retrained with the Scout so it adapts as the
// team and its incidents change.
type Selector struct {
	words *text.WordCounter
	rf    *forest.Forest
	// threshold on P(misclassified): above it, use CPD+.
	threshold float64
}

// SelectorParams configure selector training.
type SelectorParams struct {
	// ImportantWords is the meta-feature vocabulary size (default 60).
	ImportantWords int
	// Threshold is the P(RF wrong) above which CPD+ is used (default 0.5).
	Threshold float64
	// Forest parameterizes the meta-model.
	Forest forest.Params
}

func (p SelectorParams) withDefaults() SelectorParams {
	if p.ImportantWords <= 0 {
		p.ImportantWords = 60
	}
	if p.Threshold <= 0 {
		p.Threshold = 0.5
	}
	if p.Forest.NumTrees == 0 {
		p.Forest = forest.Params{NumTrees: 60, MaxDepth: 8, Seed: p.Forest.Seed, Workers: p.Forest.Workers}
	}
	return p
}

// selectorExample is one meta-training example: incident text plus whether
// the preliminary RF got it wrong.
type selectorExample struct {
	doc      string
	rfWrong  bool
	id       string
	docToken []string
}

// trainSelector fits the meta-model. With no examples (or a single class)
// it degrades to "always trust the RF".
func trainSelector(examples []selectorExample, p SelectorParams) (*Selector, error) {
	p = p.withDefaults()
	s := &Selector{threshold: p.Threshold}
	if len(examples) == 0 {
		return s, nil
	}
	docs := make([][]string, len(examples))
	labels := make([]bool, len(examples))
	anyWrong := false
	for i, ex := range examples {
		docs[i] = text.Tokenize(ex.doc)
		labels[i] = ex.rfWrong
		anyWrong = anyWrong || ex.rfWrong
	}
	if !anyWrong {
		return s, nil // nothing to learn: RF is right on everything seen
	}
	vocab := text.BuildVocabulary(docs, text.VocabOptions{MinDocFreq: 2})
	important := text.ImportantWords(docs, labels, vocab, p.ImportantWords)
	if len(important) == 0 {
		return s, nil
	}
	s.words = text.NewWordCounter(important)
	d := mlcore.NewDataset(s.words.Names())
	for i, ex := range examples {
		d.MustAdd(mlcore.Sample{X: s.words.Featurize(docs[i]), Y: labels[i], ID: ex.id})
	}
	rf, err := forest.Train(d, p.Forest)
	if err != nil {
		return nil, fmt.Errorf("selector: %w", err)
	}
	s.rf = rf
	return s, nil
}

// UseCPD reports whether the incident should be routed to CPD+ and the
// selector's estimate of P(the RF would be wrong).
func (s *Selector) UseCPD(incidentText string) (bool, float64) {
	if s.rf == nil || s.words == nil {
		return false, 0
	}
	x := s.words.Featurize(text.Tokenize(incidentText))
	wrong, conf := s.rf.Predict(x)
	p := conf
	if !wrong {
		p = 1 - conf
	}
	return p > s.threshold, p
}

// DeciderModel abstracts the selector's inner classifier so the Figure 8
// experiment can swap it (bag-of-words RF, AdaBoost, one-class SVMs).
type DeciderModel interface {
	// UseCPD decides whether the incident should use the unsupervised
	// path.
	UseCPD(incidentText string) (bool, float64)
}

// Interface conformance.
var _ DeciderModel = (*Selector)(nil)

// holdoutSplit deterministically splits n indices into fit and holdout
// sets (~70/30) for selector meta-training.
func holdoutSplit(n int, seed int64) (fit, holdout []int) {
	rng := rand.New(rand.NewSource(seed))
	for _, i := range rng.Perm(n) {
		if len(holdout) < n*3/10 {
			holdout = append(holdout, i)
		} else {
			fit = append(fit, i)
		}
	}
	return fit, holdout
}
