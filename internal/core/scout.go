package core

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"strings"
	"sync"

	"scouts/internal/incident"
	"scouts/internal/metrics"
	"scouts/internal/ml/cpd"
	"scouts/internal/ml/forest"
	"scouts/internal/ml/mlcore"
	"scouts/internal/monitoring"
	"scouts/internal/parallel"
	"scouts/internal/topology"
)

// Verdict is the kind of answer a Scout gives for an incident.
type Verdict string

// Verdicts.
const (
	// VerdictResponsible / VerdictNotResponsible are model answers.
	VerdictResponsible    Verdict = "responsible"
	VerdictNotResponsible Verdict = "not-responsible"
	// VerdictExcluded: an EXCLUDE rule matched — explicitly out of scope.
	VerdictExcluded Verdict = "excluded"
	// VerdictFallback: no components could be extracted; the incident is
	// too broad for the Scout and goes to the legacy routing process
	// (§5.3).
	VerdictFallback Verdict = "fallback"
)

// Prediction is a Scout's full answer: label, confidence and explanation
// (§4 requires all three).
type Prediction struct {
	Verdict     Verdict
	Responsible bool
	Confidence  float64 // in [0.5, 1] for model verdicts
	Model       string  // "rf", "cpd+", "exclude-rule", "none"
	Components  []string
	Explanation string
	// Health, when present, reports the monitoring data quality behind the
	// answer: imputed feature fraction, unavailable datasets, admitted
	// staleness (§6). Gate verdicts (excluded, no components) carry none —
	// they never consult monitoring.
	Health *DataHealth
}

// Usable reports whether the prediction can drive routing (fallback
// verdicts cannot).
func (p Prediction) Usable() bool { return p.Verdict != VerdictFallback }

// TrainOptions configure Scout training.
type TrainOptions struct {
	// Config is the parsed team configuration (required).
	Config *Config
	// Topology is the component hierarchy (required).
	Topology *topology.Topology
	// Source serves monitoring data (required).
	Source monitoring.DataSource
	// Incidents is the labelled training trace: an incident is a positive
	// example when OwnerLabel equals the configured team.
	Incidents []*incident.Incident
	// Forest parameterizes the main supervised model.
	Forest forest.Params
	// Selector parameterizes the model selector.
	Selector SelectorParams
	// Detector parameterizes change-point detection inside CPD+.
	Detector cpd.Params
	// Seed drives the train/holdout split.
	Seed int64
	// AgeDecayHours, when positive, down-weights old incidents with scale
	// AgeDecayHours (§8 "Down-weighting old incidents").
	AgeDecayHours float64
	// BoostIDs up-weights previously mis-classified incidents by
	// BoostFactor in this retraining round (§8 "Learning from past
	// mistakes").
	BoostIDs    map[string]bool
	BoostFactor float64
	// MaxCPDExamples caps how many broad incidents train CPD+'s
	// cluster-level forest (default 300; CPD is the expensive path).
	MaxCPDExamples int
	// Cache, when non-nil, memoizes featurization across retraining
	// rounds. It must be dedicated to this (Config, Topology, Source)
	// combination.
	Cache *FeatureCache
	// Workers bounds the goroutines used for per-incident featurization
	// and tree growing; 0 selects runtime.GOMAXPROCS(0). Training output
	// is bit-identical for every worker count.
	Workers int
}

// Scout is a trained per-team gate-keeper.
type Scout struct {
	cfg      *Config
	fb       *FeatureBuilder
	rf       *forest.Forest
	cpdPlus  *cpd.Plus
	selector DeciderModel
	// trainMeans holds per-feature training means for imputation when a
	// monitoring system is unavailable at inference time (§6).
	trainMeans []float64
	// Selector meta-training data, retained so alternative decider models
	// can be fitted for comparison (Figure 8).
	selDocs  []string
	selWrong []bool
	// detector holds the change-point parameters used at train time so
	// cached CPD+ vectors stay consistent at inference.
	detector cpd.Params
	// degrade decides when monitoring has degraded too far to answer
	// through a model (zero value: never).
	degrade DegradationPolicy
	// obs, when set, sees every prediction the request paths produce
	// (single and batch) together with the request context, so the
	// serving layer can count models, fallbacks and imputation and tie
	// degradation events to request IDs. Never serialized; Restore
	// builds observer-less Scouts and the server re-installs its
	// observer on every load.
	obs PredictObserver
	// vecs pools the transient feature vectors of the predict paths: a
	// vector lives only for the span of one prediction (nothing retains
	// it), so pooling makes request scoring free of per-request
	// feature-vector garbage. Scouts are always used by pointer.
	vecs sync.Pool
}

// ErrNoTrainingIncidents is returned when Train is given no incidents.
var ErrNoTrainingIncidents = errors.New("core: no training incidents")

// Train builds a Scout from a configuration and a labelled incident trace.
// This is the Scout framework's "starter Scout" pipeline (Figure 5): the
// team supplies only the configuration; everything else is automatic.
func Train(opt TrainOptions) (*Scout, error) {
	if opt.Config == nil || opt.Topology == nil || opt.Source == nil {
		return nil, errors.New("core: Config, Topology and Source are required")
	}
	if len(opt.Incidents) == 0 {
		return nil, ErrNoTrainingIncidents
	}
	if opt.Forest.NumTrees == 0 {
		opt.Forest = forest.Params{NumTrees: 100, MaxDepth: 14, Seed: opt.Seed}
	}
	if opt.Forest.Workers == 0 {
		opt.Forest.Workers = opt.Workers
	}
	if opt.Selector.Forest.Workers == 0 {
		opt.Selector.Forest.Workers = opt.Workers
	}
	if opt.MaxCPDExamples <= 0 {
		opt.MaxCPDExamples = 200
	}
	if opt.Detector.Permutations == 0 {
		// CPD+ runs a permutation test per series; 29 permutations keep
		// training fast at alpha = 0.05 resolution.
		opt.Detector.Permutations = 29
	}
	s := &Scout{cfg: opt.Config, detector: opt.Detector}
	s.fb = NewFeatureBuilder(opt.Config, opt.Topology, opt.Source)

	// Featurize the trainable incidents (those with extractable
	// components; the rest use legacy routing, §7) in parallel. Each
	// incident's features are a pure function of (incident, config,
	// source), so workers only need index-addressed slots; rows are then
	// assembled sequentially in incident order, which keeps the dataset —
	// and everything trained on it — bit-identical at any worker count.
	type row struct {
		in *incident.Incident
		ex Extraction
		x  []float64
	}
	workers := parallel.Workers(opt.Workers)
	entries := parallel.Map(workers, len(opt.Incidents), func(i int) cacheEntry {
		in := opt.Incidents[i]
		if e, ok := opt.Cache.get(in.ID); ok {
			return e
		}
		ex := s.fb.Extract(in.Title, in.Body, in.Components)
		entry := cacheEntry{ex: ex}
		if !ex.Excluded && !ex.Empty {
			entry.x = s.fb.Featurize(ex, in.CreatedAt)
		}
		opt.Cache.put(in.ID, entry)
		return entry
	})
	var rows []row
	for i, e := range entries {
		if e.ex.Excluded || e.ex.Empty {
			continue
		}
		rows = append(rows, row{in: opt.Incidents[i], ex: e.ex, x: e.x})
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("core: none of the %d incidents had extractable components", len(opt.Incidents))
	}

	d := mlcore.NewDataset(s.fb.FeatureNames())
	for _, r := range rows {
		d.MustAdd(mlcore.Sample{
			X:    r.x,
			Y:    r.in.OwnerLabel == opt.Config.Team,
			Time: r.in.CreatedAt,
			ID:   r.in.ID,
		})
	}
	if opt.AgeDecayHours > 0 {
		now := 0.0
		for _, smp := range d.Samples {
			if smp.Time > now {
				now = smp.Time
			}
		}
		d.AgeDecay(now, opt.AgeDecayHours)
	}
	if opt.BoostFactor > 0 && len(opt.BoostIDs) > 0 {
		d.Boost(opt.BoostIDs, opt.BoostFactor)
	}

	// Selector meta-training: fit a preliminary forest on ~70%, label the
	// held-out 30% by whether that forest got them right, and train the
	// decider on those labels (§5.3 meta-learning).
	fitIdx, holdIdx := holdoutSplit(d.Len(), opt.Seed)
	var selErr error
	if len(fitIdx) > 0 && len(holdIdx) > 0 {
		pre, err := forest.Train(d.Subset(fitIdx), opt.Forest)
		if err != nil {
			return nil, fmt.Errorf("core: preliminary forest: %w", err)
		}
		var examples []selectorExample
		for _, i := range holdIdx {
			smp := d.Samples[i]
			pred, _ := pre.Predict(smp.X)
			examples = append(examples, selectorExample{
				doc:     rows[i].in.Text(),
				rfWrong: pred != smp.Y,
				id:      smp.ID,
			})
			s.selDocs = append(s.selDocs, rows[i].in.Text())
			s.selWrong = append(s.selWrong, pred != smp.Y)
		}
		opt.Selector.Forest.Seed = opt.Seed + 1
		s.selector, selErr = trainSelector(examples, opt.Selector)
		if selErr != nil {
			return nil, selErr
		}
	} else {
		s.selector = &Selector{}
	}

	// The main supervised model trains on everything.
	rf, err := forest.Train(d, opt.Forest)
	if err != nil {
		return nil, fmt.Errorf("core: main forest: %w", err)
	}
	s.rf = rf

	// CPD+ trains its cluster-level forest on broad incidents. Featurized
	// vectors (the change-point detection output) are cached: they are the
	// expensive part of retraining.
	plusParams := cpd.PlusParams{
		Datasets: s.fb.DatasetNames(),
		Detector: opt.Detector,
		Forest:   forest.Params{NumTrees: 40, MaxDepth: 8, Seed: opt.Seed + 2, Workers: opt.Workers},
	}
	// The MaxCPDExamples cap is order-dependent, so pick the training rows
	// sequentially, then run the expensive change-point featurization of
	// the missing vectors in parallel (index-addressed, order preserved).
	var cpdRows []row
	for _, r := range rows {
		if !r.ex.Broad || len(cpdRows) >= opt.MaxCPDExamples {
			continue
		}
		cpdRows = append(cpdRows, r)
	}
	cpdXs := parallel.Map(workers, len(cpdRows), func(i int) []float64 {
		r := cpdRows[i]
		if e, ok := opt.Cache.get(r.in.ID); ok && e.cpdX != nil {
			return e.cpdX
		}
		vec := plusParams.Featurize(s.fb.CPDInput(r.ex, r.in.CreatedAt))
		return opt.Cache.setCPD(r.in.ID, vec)
	})
	cpdYs := make([]bool, len(cpdRows))
	for i, r := range cpdRows {
		cpdYs[i] = r.in.OwnerLabel == opt.Config.Team
	}
	plus, err := cpd.TrainPlusVectors(cpdXs, cpdYs, plusParams)
	if err != nil {
		return nil, fmt.Errorf("core: CPD+: %w", err)
	}
	s.cpdPlus = plus

	// Training means for feature imputation.
	s.trainMeans = make([]float64, d.Dim())
	for _, smp := range d.Samples {
		for j, v := range smp.X {
			s.trainMeans[j] += v
		}
	}
	for j := range s.trainMeans {
		s.trainMeans[j] /= float64(d.Len())
	}
	return s, nil
}

// PredictObserver sees every prediction the request-scoring paths
// produce. The context is the request context, so an observer can read
// the request ID (telemetry.RequestID) and attribute fallbacks and
// imputation to the request that suffered them. Implementations run on
// the predict hot path: they must be lock-free and allocation-free for
// non-fallback predictions (atomic counter bumps; logging only on the
// cold fallback branch).
type PredictObserver interface {
	ObservePrediction(ctx context.Context, p *Prediction)
}

// SetObserver installs the prediction observer (nil disables). Install
// before serving traffic; the field is read unsynchronized on every
// prediction.
func (s *Scout) SetObserver(o PredictObserver) { s.obs = o }

// Predict classifies one incident at trigger time t using the text and the
// structured component mentions available at that time. The end-to-end
// pipeline of §5.3: exclusion rules → component gate → model selector →
// RF or CPD+ → answer with confidence and explanation. The RF feature
// vector is drawn from the Scout's pool, so a prediction produces no
// per-request feature-vector garbage.
func (s *Scout) Predict(title, body string, mentioned []string, t float64) Prediction {
	return s.PredictCtx(context.Background(), title, body, mentioned, t)
}

// PredictCtx is Predict carrying a request context: the answer is
// identical, and the installed observer (if any) sees the prediction
// together with the context's request ID.
func (s *Scout) PredictCtx(ctx context.Context, title, body string, mentioned []string, t float64) Prediction {
	p := s.predict(title, body, mentioned, t)
	if s.obs != nil {
		s.obs.ObservePrediction(ctx, &p)
	}
	return p
}

func (s *Scout) predict(title, body string, mentioned []string, t float64) Prediction {
	ex := s.fb.Extract(title, body, mentioned)
	if p, done := s.gatePrediction(ex); done {
		return p
	}
	if useCPD, pWrong := s.selector.UseCPD(title + "\n" + body); useCPD {
		h := s.sourceHealth(t)
		if p, bad := s.degradedPrediction(h, ex); bad {
			return p
		}
		p := s.predictCPDPath(ex, t, pWrong)
		p.Health = &h
		return p
	}
	x, h := s.featurizeWithImputationInto(s.getVec(), ex, t)
	if p, bad := s.degradedPrediction(h, ex); bad {
		s.putVec(x)
		return p
	}
	p := s.predictRF(x, ex)
	p.Health = &h
	s.putVec(x)
	return p
}

// BatchRequest is one incident of a batch prediction: the same inputs
// Predict takes.
type BatchRequest struct {
	Title      string
	Body       string
	Components []string
	Time       float64
}

// PredictBatch scores a batch of incidents, answering exactly what
// Predict would answer for each item — the gates, the model selector and
// the explanations are identical — but routes every RF-bound item through
// one tree-major forest.PredictProbBatch pass over pooled feature
// vectors, so a batch streams the flat forest once instead of once per
// incident and allocates no per-item feature vector.
func (s *Scout) PredictBatch(reqs []BatchRequest) []Prediction {
	return s.PredictBatchCtx(context.Background(), reqs)
}

// PredictBatchCtx is PredictBatch carrying a request context: answers
// are identical, and the installed observer (if any) sees every item's
// prediction under the batch request's context — the request ID
// propagates from the serving middleware through the batch scorer to
// each degradation fallback.
func (s *Scout) PredictBatchCtx(ctx context.Context, reqs []BatchRequest) []Prediction {
	out := s.predictBatch(reqs)
	if s.obs != nil {
		for i := range out {
			s.obs.ObservePrediction(ctx, &out[i])
		}
	}
	return out
}

func (s *Scout) predictBatch(reqs []BatchRequest) []Prediction {
	out := make([]Prediction, len(reqs))
	// Indices, pooled vectors and health reports of the items the
	// supervised model scores.
	var rfIdx []int
	var xs [][]float64
	var hs []DataHealth
	for i, r := range reqs {
		ex := s.fb.Extract(r.Title, r.Body, r.Components)
		if p, done := s.gatePrediction(ex); done {
			out[i] = p
			continue
		}
		if useCPD, pWrong := s.selector.UseCPD(r.Title + "\n" + r.Body); useCPD {
			h := s.sourceHealth(r.Time)
			if p, bad := s.degradedPrediction(h, ex); bad {
				out[i] = p
				continue
			}
			out[i] = s.predictCPDPath(ex, r.Time, pWrong)
			out[i].Health = &h
			continue
		}
		x, h := s.featurizeWithImputationInto(s.getVec(), ex, r.Time)
		if p, bad := s.degradedPrediction(h, ex); bad {
			s.putVec(x)
			out[i] = p
			continue
		}
		rfIdx = append(rfIdx, i)
		xs = append(xs, x)
		hs = append(hs, h)
		out[i].Components = ex.All()
	}
	if len(rfIdx) == 0 {
		return out
	}
	probs := s.rf.PredictProbBatch(xs, nil)
	for k, i := range rfIdx {
		p := probs[k]
		label := p >= 0.5
		conf := p
		if !label {
			conf = 1 - p
		}
		out[i].Verdict = verdictFor(label)
		out[i].Responsible = label
		out[i].Confidence = conf
		out[i].Model = "rf"
		out[i].Explanation = s.explainRF(xs[k], label)
		out[i].Health = &hs[k]
		s.putVec(xs[k])
	}
	return out
}

// gatePrediction answers the pre-model gates of the §5.3 pipeline:
// exclusion rules and the component gate. done is false when the incident
// should proceed to a model.
func (s *Scout) gatePrediction(ex Extraction) (p Prediction, done bool) {
	if ex.Excluded {
		return Prediction{
			Verdict:     VerdictExcluded,
			Responsible: false,
			Confidence:  1,
			Model:       "exclude-rule",
			Explanation: "an operator EXCLUDE rule marks this incident out of scope for " + s.cfg.Team,
		}, true
	}
	if ex.Empty {
		return Prediction{
			Verdict:     VerdictFallback,
			Model:       "none",
			Explanation: "no components could be extracted from the incident; deferring to the legacy routing process",
		}, true
	}
	return Prediction{}, false
}

// predictCPDPath answers through CPD+ for incidents the model selector
// flags as new/rare.
func (s *Scout) predictCPDPath(ex Extraction, t, pWrong float64) Prediction {
	label, conf, why := s.cpdPlus.Predict(s.fb.CPDInput(ex, t))
	return Prediction{
		Verdict:     verdictFor(label),
		Responsible: label,
		Confidence:  conf,
		Model:       "cpd+",
		Components:  ex.All(),
		Explanation: fmt.Sprintf("model selector flagged this as a new/rare incident (P(RF wrong)=%.2f); CPD+: %s", pWrong, why),
	}
}

// predictRF answers through the supervised model, validating the vector
// against the trained layout at the Scout boundary: a mismatched vector
// (a feature cache built for a different configuration, a corrupted
// snapshot) defers to legacy routing instead of reaching — and formerly
// panicking in — tree traversal.
func (s *Scout) predictRF(x []float64, ex Extraction) Prediction {
	if len(x) != len(s.rf.Features()) {
		return Prediction{
			Verdict: VerdictFallback,
			Model:   "none",
			Explanation: fmt.Sprintf("feature vector has %d features but the model was trained on %d; deferring to the legacy routing process",
				len(x), len(s.rf.Features())),
		}
	}
	label, conf := s.rf.Predict(x)
	return Prediction{
		Verdict:     verdictFor(label),
		Responsible: label,
		Confidence:  conf,
		Model:       "rf",
		Components:  ex.All(),
		Explanation: s.explainRF(x, label),
	}
}

// getVec draws a feature vector from the pool (or allocates the first
// time). Pooled vectors are dirty; FeaturizeInto overwrites every slot.
func (s *Scout) getVec() []float64 {
	if v, ok := s.vecs.Get().(*[]float64); ok {
		return *v
	}
	return make([]float64, len(s.fb.names))
}

// putVec returns a vector predictRF/explainRF have finished with.
func (s *Scout) putVec(x []float64) { s.vecs.Put(&x) }

// PredictIncident classifies an incident at its creation time using the
// initially-known component mentions.
func (s *Scout) PredictIncident(in *incident.Incident) Prediction {
	return s.Predict(in.Title, in.Body, in.InitialComponents, in.CreatedAt)
}

// PredictIncidentBatch classifies incidents at their creation time through
// the batch path; element i is exactly PredictIncident(ins[i]). It
// implements evaluate.BatchPredictor, so the §7 evaluation drivers stream
// the forest tree-major instead of per incident.
func (s *Scout) PredictIncidentBatch(ins []*incident.Incident) []Prediction {
	reqs := make([]BatchRequest, len(ins))
	for i, in := range ins {
		reqs[i] = BatchRequest{Title: in.Title, Body: in.Body, Components: in.InitialComponents, Time: in.CreatedAt}
	}
	return s.PredictBatch(reqs)
}

// PredictCached classifies an incident at creation time, reusing (and
// filling) a feature cache. The cache must belong to this Scout's
// (Config, Topology, Source) combination, and the monitoring registry must
// not have changed since the cached entries were computed — retraining
// replays satisfy both.
//
// Note the cache key is the incident ID and cached extraction uses the
// incident's full component list, so PredictCached reflects the
// steady-state information surface (as the training pipeline does).
func (s *Scout) PredictCached(in *incident.Incident, cache *FeatureCache) Prediction {
	e, ok := cache.get(in.ID)
	if !ok {
		ex := s.fb.Extract(in.Title, in.Body, in.Components)
		e = cacheEntry{ex: ex}
		if !ex.Excluded && !ex.Empty {
			e.x = s.fb.Featurize(ex, in.CreatedAt)
		}
		cache.put(in.ID, e)
	}
	if e.ex.Excluded {
		return Prediction{Verdict: VerdictExcluded, Confidence: 1, Model: "exclude-rule"}
	}
	if e.ex.Empty {
		return Prediction{Verdict: VerdictFallback, Model: "none"}
	}
	useCPD, pWrong := s.selector.UseCPD(in.Text())
	if useCPD {
		var label bool
		var conf float64
		var why string
		if e.ex.Broad {
			// The entry is a private snapshot: publish the vector only
			// through the cache's locked setter (which keeps the first
			// stored vector as canonical), never by writing the shared
			// entry directly.
			vec := e.cpdX
			if vec == nil {
				vec = cpd.PlusParams{Datasets: s.fb.DatasetNames(), Detector: s.detector}.Featurize(s.fb.CPDInput(e.ex, in.CreatedAt))
				vec = cache.setCPD(in.ID, vec)
			}
			label, conf, why = s.cpdPlus.PredictVector(vec)
		} else {
			label, conf, why = s.cpdPlus.Predict(s.fb.CPDInput(e.ex, in.CreatedAt))
		}
		return Prediction{
			Verdict: verdictFor(label), Responsible: label, Confidence: conf,
			Model: "cpd+", Components: e.ex.All(),
			Explanation: fmt.Sprintf("model selector flagged this as new/rare (P(RF wrong)=%.2f); CPD+: %s", pWrong, why),
		}
	}
	return s.predictRF(e.x, e.ex)
}

func verdictFor(responsible bool) Verdict {
	if responsible {
		return VerdictResponsible
	}
	return VerdictNotResponsible
}

// featurizeWithImputationInto builds the feature vector in x (usually a
// pooled vector), substituting training means for feature groups whose
// monitoring systems are currently unavailable — exactly what the serving
// system does when a monitor fails alongside the incident (§6) — and
// reports what it did in a DataHealth so callers (and ultimately
// operators) can see how much of the answer rests on imputed data.
func (s *Scout) featurizeWithImputationInto(x []float64, ex Extraction, t float64) ([]float64, DataHealth) {
	x = s.fb.FeaturizeInto(x, ex, t)
	av, down, maxStale := s.fb.sourceHealth(t)
	h := DataHealth{
		TotalSlots:    len(x),
		DatasetsDown:  down,
		DatasetsTotal: s.fb.datasetCount(),
		MaxStaleness:  maxStale,
	}
	for _, g := range s.fb.groups {
		missing := true
		for _, d := range g.datasets {
			if av[d.Name] {
				missing = false
				break
			}
		}
		if !missing {
			continue
		}
		for _, slot := range s.fb.groupSlots[g.name] {
			x[slot] = s.trainMeans[slot]
		}
		h.ImputedSlots += len(s.fb.groupSlots[g.name])
	}
	return x, h
}

// explainRF renders the paper's operator-facing explanation (§8): the
// components examined, the monitoring signals that drove the decision, and
// the fine print about known failure modes.
func (s *Scout) explainRF(x []float64, label bool) string {
	_, contribs := s.rf.Explain(x)
	var tops []string
	for _, c := range contribs {
		if len(tops) == 3 {
			break
		}
		// Component-count features confuse operators even though the
		// model finds them useful (§8): keep them out of explanations.
		if strings.HasSuffix(c.Feature, ".ncomponents") {
			continue
		}
		tops = append(tops, fmt.Sprintf("%s (%+.3f)", c.Feature, c.Value))
	}
	direction := "points away from"
	if label {
		direction = "points to"
	}
	out := fmt.Sprintf("random forest %s %s", direction, s.cfg.Team)
	if len(tops) > 0 {
		out += "; strongest signals: " + strings.Join(tops, ", ")
	}
	out += ". Known false negatives: transient issues already resolved, symptoms not covered by monitoring, incidents too broad in scope."
	return out
}

// Evaluate runs the Scout over a set of incidents (at their creation time)
// and returns the confusion matrix over usable verdicts, mirroring §7's
// accuracy metrics. Fallback verdicts are skipped, as in the paper's
// evaluation.
func (s *Scout) Evaluate(ins []*incident.Incident) metrics.Confusion {
	return s.EvaluateWorkers(ins, 0)
}

// EvaluateWorkers is Evaluate with an explicit worker count (0 selects
// runtime.GOMAXPROCS(0)). Predictions fan out in parallel over 64-incident
// batch chunks — a trained Scout is read-only at inference, and each chunk
// streams the flat forest tree-major — and the confusion matrix is folded
// sequentially in incident order.
func (s *Scout) EvaluateWorkers(ins []*incident.Incident, workers int) metrics.Confusion {
	const chunk = 64
	preds := make([]Prediction, len(ins))
	chunks := (len(ins) + chunk - 1) / chunk
	parallel.For(workers, chunks, func(c int) {
		lo := c * chunk
		hi := min(lo+chunk, len(ins))
		copy(preds[lo:hi], s.PredictIncidentBatch(ins[lo:hi]))
	})
	var c metrics.Confusion
	for i, p := range preds {
		if !p.Usable() {
			continue
		}
		c.Add(p.Responsible, ins[i].OwnerLabel == s.cfg.Team)
	}
	return c
}

// PredictWithModel forces one model path ("rf" or "cpd+"), bypassing the
// model selector but keeping the exclusion and component gates. The Table 1
// comparison evaluates each model in isolation this way.
func (s *Scout) PredictWithModel(model, title, body string, mentioned []string, t float64) Prediction {
	ex := s.fb.Extract(title, body, mentioned)
	if ex.Excluded {
		return Prediction{Verdict: VerdictExcluded, Confidence: 1, Model: "exclude-rule"}
	}
	if ex.Empty {
		return Prediction{Verdict: VerdictFallback, Model: "none"}
	}
	if model == "cpd+" {
		h := s.sourceHealth(t)
		if p, bad := s.degradedPrediction(h, ex); bad {
			return p
		}
		label, conf, why := s.cpdPlus.Predict(s.fb.CPDInput(ex, t))
		return Prediction{
			Verdict: verdictFor(label), Responsible: label, Confidence: conf,
			Model: "cpd+", Components: ex.All(), Explanation: why,
			Health: &h,
		}
	}
	x, h := s.featurizeWithImputationInto(s.getVec(), ex, t)
	if p, bad := s.degradedPrediction(h, ex); bad {
		s.putVec(x)
		return p
	}
	p := s.predictRF(x, ex)
	p.Health = &h
	s.putVec(x)
	return p
}

// SetDecider swaps the model-selector decider — the Figure 8 experiment
// compares the default bag-of-words RF against AdaBoost and one-class
// SVMs.
func (s *Scout) SetDecider(d DeciderModel) {
	if d != nil {
		s.selector = d
	}
}

// SelectorExamples returns the selector's meta-training data: the held-out
// incident texts and whether the preliminary RF misclassified each. Used
// to fit alternative decider models.
func (s *Scout) SelectorExamples() (docs []string, rfWrong []bool) {
	return append([]string(nil), s.selDocs...), append([]bool(nil), s.selWrong...)
}

// FeatureNames exposes the feature layout (diagnostics, deflation study).
func (s *Scout) FeatureNames() []string { return s.fb.FeatureNames() }

// Builder exposes the feature builder (experiments need raw featurization).
func (s *Scout) Builder() *FeatureBuilder { return s.fb }

// Forest exposes the trained supervised model.
func (s *Scout) Forest() *forest.Forest { return s.rf }

// Team returns the configured team name.
func (s *Scout) Team() string { return s.cfg.Team }

// TrainMeans returns the per-feature training means (serving imputation).
func (s *Scout) TrainMeans() []float64 { return append([]float64(nil), s.trainMeans...) }

// TopFeatures returns the n most important features of the supervised
// model, for reports.
func (s *Scout) TopFeatures(n int) []string {
	imp := s.rf.Importance()
	names := s.fb.FeatureNames()
	idx := make([]int, len(imp))
	for i := range idx {
		idx[i] = i
	}
	slices.SortFunc(idx, func(a, b int) int {
		if imp[a] > imp[b] {
			return -1
		}
		if imp[b] > imp[a] {
			return 1
		}
		return a - b // total order: equally important features rank by slot
	})
	if n > len(idx) {
		n = len(idx)
	}
	out := make([]string, 0, n)
	for _, i := range idx[:n] {
		out = append(out, names[i])
	}
	return out
}
