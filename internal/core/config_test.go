package core

import (
	"strings"
	"testing"

	"scouts/internal/topology"
)

func TestParseDefaultPhyNetConfig(t *testing.T) {
	cfg, err := ParseConfig(DefaultPhyNetConfig)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Team != "PhyNet" {
		t.Fatalf("team = %q", cfg.Team)
	}
	if cfg.LookbackHours != 2 {
		t.Fatalf("lookback = %v", cfg.LookbackHours)
	}
	if len(cfg.Extractors) != 5 {
		t.Fatalf("extractors = %d", len(cfg.Extractors))
	}
	if len(cfg.Monitoring) != 12 {
		t.Fatalf("monitoring refs = %d", len(cfg.Monitoring))
	}
	if len(cfg.Excludes) != 2 {
		t.Fatalf("excludes = %d", len(cfg.Excludes))
	}
	if cfg.ClassOverride("linkdrop") != "drops" || cfg.ClassOverride("switchdrop") != "drops" {
		t.Fatal("class overrides not parsed")
	}
	if !cfg.UsesDataset("pingmesh") || cfg.UsesDataset("bogus") {
		t.Fatal("UsesDataset wrong")
	}
	// Extractors match the naming scheme.
	if !cfg.Extractors[topology.TypeVM].MatchString("vm3.c10.dc3") {
		t.Fatal("vm regex broken")
	}
	if !cfg.Extractors[topology.TypeSwitch].MatchString("tor2.c1.dc1") {
		t.Fatal("switch regex broken")
	}
	if cfg.Extractors[topology.TypeSwitch].MatchString("srv2.c1.dc1") {
		t.Fatal("switch regex over-matches")
	}
}

func TestParseConfigErrors(t *testing.T) {
	cases := map[string]string{
		"missing team":   "let vm = <vm\\d+>;",
		"no extractors":  "TEAM X;",
		"bad type":       "TEAM X;\nlet widget = <w\\d+>;",
		"bad regex":      "TEAM X;\nlet vm = <[unclosed>;",
		"bad lookback":   "TEAM X;\nLOOKBACK banana;\nlet vm = <vm\\d+>;",
		"bad statement":  "TEAM X;\nFROBNICATE;\nlet vm = <vm\\d+>;",
		"bad exclude":    "TEAM X;\nlet vm = <vm\\d+>;\nEXCLUDE widget = <x>;",
		"bad monitoring": "TEAM X;\nlet vm = <vm\\d+>;\nMONITORING m = NOT_A_CALL(x);",
		"missing equals": "TEAM X;\nlet vm <vm>;",
	}
	for name, src := range cases {
		if _, err := ParseConfig(src); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestParseConfigComments(t *testing.T) {
	cfg, err := ParseConfig("# comment\nTEAM T;\n\nlet vm = <vm\\d+>;\nNARROW_DEVICES 3;")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.MaxDevicesNarrow != 3 {
		t.Fatalf("narrow = %d", cfg.MaxDevicesNarrow)
	}
}

func TestUsesDatasetDefaultsToAll(t *testing.T) {
	cfg, err := ParseConfig("TEAM T;\nlet vm = <vm\\d+>;")
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.UsesDataset("anything") {
		t.Fatal("empty monitoring list should select every dataset")
	}
}

func TestConfigRegexDelimiters(t *testing.T) {
	// Values work with and without <...> delimiters.
	cfg, err := ParseConfig("TEAM T;\nlet vm = vm\\d+;\nEXCLUDE TITLE = <maint.*>;")
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Extractors[topology.TypeVM].MatchString("vm7") {
		t.Fatal("undelimited regex broken")
	}
	if !strings.Contains(cfg.Excludes[0].Re.String(), "maint") {
		t.Fatal("exclude regex lost")
	}
}
