package core

import (
	"testing"

	"scouts/internal/ml/forest"
)

// TestRetrainWithBoostAndDecay exercises the §8 production practices:
// up-weighting previously mis-classified incidents and down-weighting old
// ones in the next retraining round.
func TestRetrainWithBoostAndDecay(t *testing.T) {
	f := getFixture(t)

	// First pass: collect the IDs the Scout got wrong on its own
	// training data slice (a proxy for production mistakes).
	wrong := map[string]bool{}
	for _, in := range f.train {
		p := f.scout.PredictIncident(in)
		if p.Usable() && p.Responsible != (in.OwnerLabel == f.scout.Team()) {
			wrong[in.ID] = true
		}
	}

	cfg, err := ParseConfig(DefaultPhyNetConfig)
	if err != nil {
		t.Fatal(err)
	}
	retrained, err := Train(TrainOptions{
		Config:        cfg,
		Topology:      f.gen.Topology(),
		Source:        f.gen.Telemetry(),
		Incidents:     f.train,
		Forest:        forest.Params{NumTrees: 40, MaxDepth: 12, Seed: 9},
		Seed:          9,
		AgeDecayHours: 24 * 60, // 60-day decay scale
		BoostIDs:      wrong,
		BoostFactor:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := retrained.Evaluate(f.test)
	if c.F1() < 0.88 {
		t.Fatalf("retraining with §8 weighting should stay accurate, F1 = %v", c.F1())
	}
}

// TestFeatureCacheSpeedsRetraining verifies the cache is actually consulted
// (second Train with the same cache performs no featurization, so it must
// produce an identical model much faster — we check identity, the
// observable part).
func TestFeatureCacheSpeedsRetraining(t *testing.T) {
	f := getFixture(t)
	cfg, err := ParseConfig(DefaultPhyNetConfig)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewFeatureCache()
	opts := TrainOptions{
		Config: cfg, Topology: f.gen.Topology(), Source: f.gen.Telemetry(),
		Incidents: f.train[:200], Seed: 3, Cache: cache,
		Forest: forest.Params{NumTrees: 20, Seed: 3},
	}
	s1, err := Train(opts)
	if err != nil {
		t.Fatal(err)
	}
	warm := cache.Len()
	if warm == 0 {
		t.Fatal("cache not populated")
	}
	s2, err := Train(opts)
	if err != nil {
		t.Fatal(err)
	}
	if cache.Len() != warm {
		t.Fatal("second training grew the cache; it should have been fully warm")
	}
	for _, in := range f.test[:40] {
		a := s1.PredictCached(in, cache)
		b := s2.PredictCached(in, cache)
		if a.Responsible != b.Responsible {
			t.Fatal("cached retraining changed predictions")
		}
	}
}
