package incident

import (
	"math"
	"testing"
)

func sample() *Incident {
	return &Incident{
		ID:         "INC-1",
		Title:      "VM connectivity loss",
		Body:       "vm3.c1.dc1 cannot reach storage cluster c2.dc1",
		Severity:   SevMedium,
		Source:     SourceMonitor,
		CreatedBy:  "Storage",
		CreatedAt:  30, // day 1
		Components: []string{"vm3.c1.dc1", "c2.dc1"},
		Hops: []Hop{
			{Team: "Storage", Enter: 30, Exit: 32},
			{Team: "SLB", Enter: 32, Exit: 33.5},
			{Team: "PhyNet", Enter: 33.5, Exit: 36},
		},
		OwnerLabel: "PhyNet",
		TrueOwner:  "PhyNet",
	}
}

func TestTimeAccounting(t *testing.T) {
	in := sample()
	if got := in.TotalTime(); math.Abs(got-6) > 1e-12 {
		t.Fatalf("TotalTime = %v", got)
	}
	if got := in.TimeIn("Storage"); got != 2 {
		t.Fatalf("TimeIn(Storage) = %v", got)
	}
	if got := in.WastedTime(); math.Abs(got-3.5) > 1e-12 {
		t.Fatalf("WastedTime = %v", got)
	}
}

func TestTeamsAndRouting(t *testing.T) {
	in := sample()
	teams := in.Teams()
	if len(teams) != 3 || teams[0] != "Storage" || teams[2] != "PhyNet" {
		t.Fatalf("Teams = %v", teams)
	}
	if !in.Misrouted() {
		t.Fatal("3-hop incident should be mis-routed")
	}
	if !in.WentThrough("SLB") || in.WentThrough("DNS") {
		t.Fatal("WentThrough wrong")
	}
	direct := &Incident{ID: "INC-2", OwnerLabel: "PhyNet", Hops: []Hop{{Team: "PhyNet", Enter: 0, Exit: 1}}}
	if direct.Misrouted() {
		t.Fatal("directly-routed incident flagged as mis-routed")
	}
}

func TestDay(t *testing.T) {
	if d := (&Incident{CreatedAt: 30}).Day(); d != 1 {
		t.Fatalf("Day = %d", d)
	}
	if d := (&Incident{CreatedAt: 23.99}).Day(); d != 0 {
		t.Fatalf("Day = %d", d)
	}
}

func TestValidate(t *testing.T) {
	in := sample()
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := sample()
	bad.Hops[1].Exit = bad.Hops[1].Enter - 1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative-duration hop should fail validation")
	}
	overlap := sample()
	overlap.Hops[1].Enter = overlap.Hops[0].Enter - 1
	if err := overlap.Validate(); err == nil {
		t.Fatal("overlapping hops should fail validation")
	}
	if err := (&Incident{}).Validate(); err == nil {
		t.Fatal("missing ID should fail validation")
	}
}

func TestLogQueries(t *testing.T) {
	var l Log
	a := sample()
	b := sample()
	b.ID = "INC-2"
	b.CreatedAt = 50 // day 2
	b.OwnerLabel = "Storage"
	b.Hops = []Hop{{Team: "Storage", Enter: 50, Exit: 51}}
	l.Append(a)
	l.Append(b)

	if l.Len() != 2 {
		t.Fatalf("Len = %d", l.Len())
	}
	days, groups := l.ByDay()
	if len(days) != 2 || days[0] != 1 || days[1] != 2 {
		t.Fatalf("days = %v", days)
	}
	if len(groups[1]) != 1 || groups[1][0].ID != "INC-1" {
		t.Fatalf("groups = %v", groups)
	}
	if got := l.Involving("PhyNet"); len(got) != 1 {
		t.Fatalf("Involving = %d", len(got))
	}
	if got := l.OwnedBy("Storage"); len(got) != 1 || got[0].ID != "INC-2" {
		t.Fatalf("OwnedBy = %v", got)
	}
}

func TestStringers(t *testing.T) {
	if SevHigh.String() != "high" || SevLow.String() != "low" || SevMedium.String() != "medium" {
		t.Fatal("severity strings")
	}
	if SourceCustomer.String() != "customer" || SourceMonitor.String() != "monitor" {
		t.Fatal("source strings")
	}
}
