// Package incident models incidents and their routing history: the records
// the incident-management system keeps (§2–§3) and that both the baseline
// router and the Scouts consume. Times are normalized model hours.
package incident

import (
	"fmt"
	"math"
	"sort"
)

// Severity follows the paper's low/medium/high split (§3.1: perfect routing
// saves 32% / 47.4% / 0.15% of time-to-mitigation respectively — every team
// is pulled into the highest-severity incidents regardless of routing).
type Severity int

// Severity levels.
const (
	SevLow Severity = iota
	SevMedium
	SevHigh
)

// String renders the severity.
func (s Severity) String() string {
	switch s {
	case SevHigh:
		return "high"
	case SevMedium:
		return "medium"
	default:
		return "low"
	}
}

// Source records how the incident was created (§2): by a team's automated
// watchdog or by a customer (CRI).
type Source int

// Incident sources.
const (
	SourceMonitor Source = iota
	SourceCustomer
)

// String renders the source.
func (s Source) String() string {
	if s == SourceCustomer {
		return "customer"
	}
	return "monitor"
}

// Hop is one team's stint investigating the incident.
type Hop struct {
	Team  string
	Enter float64 // model hours
	Exit  float64
}

// Duration returns the dwell time of the hop.
func (h Hop) Duration() float64 { return h.Exit - h.Enter }

// Incident is one incident record. Fields prefixed "True" are simulation
// ground truth that no routing system is allowed to read; OwnerLabel is the
// (possibly noisy, §8) label the incident-management system recorded.
type Incident struct {
	ID        string
	Title     string
	Body      string
	Severity  Severity
	Source    Source
	CreatedBy string  // team whose watchdog created it; "" for CRIs
	CreatedAt float64 // model hours

	// Components the incident text mentions (also embedded in Body).
	Components []string

	// InitialComponents are the components known at creation time. CRIs
	// often start with missing information (§7.4); earlier teams append
	// what they discover, so Components ⊇ InitialComponents by the time
	// the incident has been investigated.
	InitialComponents []string

	// Hops is the baseline routing trace, in order.
	Hops []Hop

	// OwnerLabel is the team that closed the incident per the incident
	// manager — the training label, which is sometimes wrong (§8 "Not all
	// incidents have the right label").
	OwnerLabel string

	// TrueOwner is the ground-truth responsible team ("customer" when the
	// root cause was outside the provider).
	TrueOwner string

	// RootCause describes the injected fault (diagnostics only).
	RootCause string
}

// Text returns the full text a text-based router sees.
func (in *Incident) Text() string { return in.Title + "\n" + in.Body }

// TotalTime is the end-to-end investigation time across all hops.
func (in *Incident) TotalTime() float64 {
	var t float64
	for _, h := range in.Hops {
		t += h.Duration()
	}
	return t
}

// TimeIn returns the total time the given team spent on the incident.
func (in *Incident) TimeIn(team string) float64 {
	var t float64
	for _, h := range in.Hops {
		if h.Team == team {
			t += h.Duration()
		}
	}
	return t
}

// Teams returns the distinct teams that investigated, in first-touch order.
func (in *Incident) Teams() []string {
	seen := map[string]bool{}
	var out []string
	for _, h := range in.Hops {
		if !seen[h.Team] {
			seen[h.Team] = true
			out = append(out, h.Team)
		}
	}
	return out
}

// WentThrough reports whether the team appears in the routing trace.
func (in *Incident) WentThrough(team string) bool {
	for _, h := range in.Hops {
		if h.Team == team {
			return true
		}
	}
	return false
}

// Misrouted reports whether any team other than the final owner was
// involved before the incident reached the owner (§3: mis-routed incidents
// waste other teams' time proving their innocence).
func (in *Incident) Misrouted() bool {
	if len(in.Hops) == 0 {
		return false
	}
	return in.Hops[0].Team != in.OwnerLabel || len(in.Teams()) > 1
}

// WastedTime is the investigation time spent by teams other than the final
// owner — the time perfect routing would have saved.
func (in *Incident) WastedTime() float64 {
	var t float64
	for _, h := range in.Hops {
		if h.Team != in.OwnerLabel {
			t += h.Duration()
		}
	}
	return t
}

// Day returns the (integer) day the incident was created on.
func (in *Incident) Day() int { return int(math.Floor(in.CreatedAt / 24)) }

// Validate checks internal consistency of the record.
func (in *Incident) Validate() error {
	if in.ID == "" {
		return fmt.Errorf("incident: missing ID")
	}
	prev := in.CreatedAt
	for i, h := range in.Hops {
		if h.Exit < h.Enter {
			return fmt.Errorf("incident %s: hop %d exits before entering", in.ID, i)
		}
		if h.Enter+1e-9 < prev {
			return fmt.Errorf("incident %s: hop %d overlaps previous hop", in.ID, i)
		}
		prev = h.Exit
	}
	return nil
}

// Log is an ordered collection of incidents with query helpers.
type Log struct {
	Incidents []*Incident
}

// Append adds an incident to the log.
func (l *Log) Append(in *Incident) { l.Incidents = append(l.Incidents, in) }

// Len returns the number of incidents.
func (l *Log) Len() int { return len(l.Incidents) }

// Filter returns the incidents for which keep returns true.
func (l *Log) Filter(keep func(*Incident) bool) []*Incident {
	var out []*Incident
	for _, in := range l.Incidents {
		if keep(in) {
			out = append(out, in)
		}
	}
	return out
}

// ByDay groups incidents by creation day, returning the sorted day indices
// and the per-day groups. Used by the per-day fraction figures (1 and 4).
func (l *Log) ByDay() (days []int, groups map[int][]*Incident) {
	groups = map[int][]*Incident{}
	for _, in := range l.Incidents {
		d := in.Day()
		groups[d] = append(groups[d], in)
	}
	for d := range groups {
		days = append(days, d)
	}
	sort.Ints(days)
	return days, groups
}

// Involving returns incidents that passed through the team.
func (l *Log) Involving(team string) []*Incident {
	return l.Filter(func(in *Incident) bool { return in.WentThrough(team) })
}

// OwnedBy returns incidents whose recorded owner is the team.
func (l *Log) OwnedBy(team string) []*Incident {
	return l.Filter(func(in *Incident) bool { return in.OwnerLabel == team })
}
