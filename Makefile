# Standard entry points; `make ci` is what a pre-merge check should run.
# The race detector matters here: the training/evaluation layer fans work
# out across goroutines (internal/parallel) and the serving layer hot-swaps
# models under live traffic.

GO ?= go

.PHONY: all build vet test race lint lint-baseline lint-selfcheck bench bench-pr3 bench-workers bench-smoke loadgen-smoke chaos-smoke soak-smoke pack-smoke fleet-smoke soak ci clean

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full suite under the race detector. Slower (the detector costs ~5-10x),
# but it is the only gate that exercises the concurrent feature cache,
# parallel forest training and the serving hot-swap path for real races.
race:
	$(GO) test -race ./...

# PR 7 benchmarks, paired old-vs-new: model-load latency through the
# JSON snapshot path (parse, rebuild pointer trees, re-derive the flat
# arrays) vs the scoutpack binary path (verify checksum, adopt the
# arrays), and batch inference throughput through the exact f64 8-lane
# kernel vs the quantized cache-blocked kernels at 8 and 16 lanes on a
# production-scale forest. Results land in BENCH_PR7.json (ns/op,
# allocs/op, per-result pkg) via cmd/benchjson; divide the pairs
# RestoreJSON/RestorePack and PredictFlatBig/PredictQuant8|16.
bench:
	( $(GO) test -bench 'RestoreJSON$$|RestorePack$$|ColdLoadJSON$$|ColdLoadPack$$' -benchtime 50x -run '^$$' . ; \
	  $(GO) test -bench 'PredictFlatBig$$|PredictQuant8$$|PredictQuant16$$' -benchtime 20x -run '^$$' . ) \
		| $(GO) run ./cmd/benchjson > BENCH_PR7.json
	@cat BENCH_PR7.json

# The PR 3 kernel benchmarks (split finder, featurization, window
# aggregates, flat vs pointer inference, serving predict paths), kept
# runnable; results land in BENCH_PR3.json as before.
bench-pr3:
	( $(GO) test -bench 'BestSplit|Featurize|WindowStats' -benchtime 3x -run '^$$' . ; \
	  $(GO) test -bench 'PredictFlat$$|PredictPointer$$|PredictFlatSingle$$' -benchtime 200x -run '^$$' . ; \
	  $(GO) test -bench 'ServingPredict' -benchtime 20x -run '^$$' ./internal/serving ) \
		| $(GO) run ./cmd/benchjson > BENCH_PR3.json
	@cat BENCH_PR3.json

# Worker-count sweeps: compare ns/op between workers=1 and workers=4+ for
# the parallel-layer speedup (single-core machines will show parity).
bench-workers:
	$(GO) test -bench 'Workers' -benchtime 1x -run '^$$'

# Bench smoke: one iteration of every kernel benchmark, no output files —
# catches bitrot in the benchmark code itself without timing anything.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BestSplit|WindowStats|PredictFlat$$|PredictPointer$$' -benchtime 1x .

# Loadgen smoke: runs the load generator's request/report path in both
# modes against an in-process httptest server (no sockets, no timing) —
# catches drift between loadgen's payloads and the serving API.
loadgen-smoke:
	$(GO) test -run 'TestLoadgenSmoke' -count 1 ./cmd/loadgen

# Chaos smoke: bounded fault-injection pass under the race detector. The
# loadgen chaos rotation (malformed JSON, oversized bodies, mid-body
# disconnects) must draw zero 5xx, and the serving chaos tests (50%
# monitoring blackout, shedding, deadlines, panic recovery, deterministic
# degraded answers) must hold with the detector watching.
chaos-smoke:
	$(GO) test -race -run 'TestLoadgenChaos' -count 1 ./cmd/loadgen
	$(GO) test -race -run 'TestChaos|TestShedding|TestPanicRecovery|TestRequestDeadline|TestDegradationOverHTTP' -count 1 ./internal/serving

# Soak smoke: a ~2s sustained run against an in-process server with
# sub-second /metrics scrapes — proves the soak loop, the Prometheus
# scrape parser and the SLO verdict math against the live exposition
# format, without booting a real daemon.
soak-smoke:
	$(GO) test -run 'TestLoadgenSoak|TestParseProm' -count 1 ./cmd/loadgen

# End-to-end soak: boots a real scoutd, drives sustained -soak traffic
# at it, and writes the SLO-judged report — client-side latency
# percentiles plus the server's own /metrics counters — to
# BENCH_PR6.json. Deliberately not part of `make ci` (it trains a model
# and times a real server); soak-smoke covers the plumbing there.
soak:
	$(GO) build -o /tmp/scouts-soak-scoutd ./cmd/scoutd
	@set -e; \
	/tmp/scouts-soak-scoutd -addr 127.0.0.1:8093 -days 30 -rate 6 -access-log & \
	pid=$$!; trap "kill $$pid 2>/dev/null || true" EXIT; \
	for i in $$(seq 1 120); do \
		curl -fsS http://127.0.0.1:8093/v1/health >/dev/null 2>&1 && break; \
		sleep 1; \
	done; \
	$(GO) run ./cmd/loadgen -url http://127.0.0.1:8093 -soak -mode batch -batch 32 \
		-seed 7 -days 30 -rate 6 -c 4 -duration 10s -scrape 1s -slo-p99 250 -out BENCH_PR6.json
	@cat BENCH_PR6.json

# Pack/inspect smoke: boots a tiny scoutd against an empty -store (it
# trains and publishes a scoutpack), then drives scoutctl's inspect and
# pack subcommands at the directory — the CLI surface of the DESIGN.md
# §12 binary model format, exercised end to end. The JSON→pack
# conversion itself is pinned by TestRepackStore in the race suite.
pack-smoke:
	$(GO) build -o /tmp/scouts-pack-scoutd ./cmd/scoutd
	$(GO) build -o /tmp/scouts-pack-scoutctl ./cmd/scoutctl
	@set -e; dir=$$(mktemp -d); \
	/tmp/scouts-pack-scoutd -addr 127.0.0.1:8094 -days 5 -rate 4 -store $$dir & \
	pid=$$!; trap "kill $$pid 2>/dev/null || true; rm -rf $$dir" EXIT; \
	for i in $$(seq 1 120); do \
		curl -fsS http://127.0.0.1:8094/v1/health >/dev/null 2>&1 && break; \
		sleep 1; \
	done; \
	/tmp/scouts-pack-scoutctl inspect $$dir/model-000001.pack; \
	/tmp/scouts-pack-scoutctl pack $$dir

# Fleet smoke: the resilient-gateway kill test with real processes. The
# in-process halves (loadgen -fleet plumbing, the gateway's own kill
# test) run first under the race detector; then three scoutd replicas
# share one -store (the first boot trains and publishes, the other two
# load the same scoutpack), scoutgw fronts them, and loadgen -fleet
# SIGTERMs the middle replica two seconds into a six-second burst. The
# SLO is zero failed non-shed requests: every client answer is a 200, a
# 4xx, or an honored 429 — never a transport error or 5xx — with the
# gateway's retries/hedges/breaker trips reported in FLEET_SMOKE.json.
fleet-smoke:
	$(GO) test -race -run 'TestDriveHonors429|TestDriveSheds|TestJudgeFleet|TestLoadgenFleet' -count 1 ./cmd/loadgen
	$(GO) test -race -run 'TestFleetSurvivesReplicaKillMidBurst' -count 1 ./internal/gateway
	$(GO) build -o /tmp/scouts-fleet-scoutd ./cmd/scoutd
	$(GO) build -o /tmp/scouts-fleet-scoutgw ./cmd/scoutgw
	$(GO) build -o /tmp/scouts-fleet-loadgen ./cmd/loadgen
	@set -e; dir=$$(mktemp -d); \
	trap 'kill $$p1 $$p2 $$p3 $$pg 2>/dev/null || true; rm -rf $$dir' EXIT; \
	/tmp/scouts-fleet-scoutd -addr 127.0.0.1:8101 -days 5 -rate 4 -store $$dir & p1=$$!; \
	for i in $$(seq 1 120); do \
		curl -fsS http://127.0.0.1:8101/v1/health >/dev/null 2>&1 && break; \
		sleep 1; \
	done; \
	/tmp/scouts-fleet-scoutd -addr 127.0.0.1:8102 -days 5 -rate 4 -store $$dir & p2=$$!; \
	/tmp/scouts-fleet-scoutd -addr 127.0.0.1:8103 -days 5 -rate 4 -store $$dir & p3=$$!; \
	for port in 8102 8103; do \
		for i in $$(seq 1 120); do \
			curl -fsS http://127.0.0.1:$$port/v1/health >/dev/null 2>&1 && break; \
			sleep 1; \
		done; \
	done; \
	/tmp/scouts-fleet-scoutgw -addr 127.0.0.1:8104 \
		-replica r1=phynet=http://127.0.0.1:8101 \
		-replica r2=phynet=http://127.0.0.1:8102 \
		-replica r3=phynet=http://127.0.0.1:8103 & pg=$$!; \
	for i in $$(seq 1 120); do \
		curl -fsS http://127.0.0.1:8104/v1/health >/dev/null 2>&1 && break; \
		sleep 1; \
	done; \
	/tmp/scouts-fleet-loadgen -url http://127.0.0.1:8104 -fleet -seed 7 -days 5 -rate 4 \
		-c 4 -duration 6s -kill-pid $$p2 -kill-after 2s -out FLEET_SMOKE.json
	@cat FLEET_SMOKE.json

# Project-specific static analysis (cmd/scoutlint): determinism, map
# iteration order, reflective sorts, hot-path allocations, lock hygiene,
# HTTP input hardening, plus the flow-sensitive suite (ctxflow, leak,
# atomicity, fsyncrename). Emits lint.sarif as a CI artifact and diffs
# findings against the committed lint.baseline.json: grandfathered
# findings are tracked, any NEW finding exits 1 and fails `make ci`.
lint:
	$(GO) run ./cmd/scoutlint -sarif lint.sarif -baseline lint.baseline.json ./...

# Regenerate the baseline (after fixing or deliberately grandfathering
# findings). Review the diff before committing: every entry is a defect
# the ratchet stops tracking as new.
lint-baseline:
	$(GO) run ./cmd/scoutlint -write-baseline lint.baseline.json ./...

# The linter linting itself: the CFG builder, dataflow engine and
# analyzers must come out clean under their own rules.
lint-selfcheck:
	$(GO) run ./cmd/scoutlint internal/lint

ci: vet lint lint-selfcheck build race bench-smoke loadgen-smoke chaos-smoke soak-smoke pack-smoke fleet-smoke

clean:
	$(GO) clean ./...
