# Standard entry points; `make ci` is what a pre-merge check should run.
# The race detector matters here: the training/evaluation layer fans work
# out across goroutines (internal/parallel) and the serving layer hot-swaps
# models under live traffic.

GO ?= go

.PHONY: all build vet test race lint bench bench-workers bench-smoke loadgen-smoke chaos-smoke soak-smoke soak ci clean

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full suite under the race detector. Slower (the detector costs ~5-10x),
# but it is the only gate that exercises the concurrent feature cache,
# parallel forest training and the serving hot-swap path for real races.
race:
	$(GO) test -race ./...

# Kernel benchmarks, paired old-vs-new: the presorted split finder vs the
# retained seed kernel, aggregate-backed featurization vs window
# materialization, the O(log n) window aggregates vs a full scan, and the
# flat SoA inference kernel (batch + single) vs the retained pointer
# kernel, plus the serving predict paths (single and batch=32). Results
# from both packages land in BENCH_PR3.json (ns/op, allocs/op, per-result
# pkg) via cmd/benchjson; compare the paired benchmarks.
bench:
	( $(GO) test -bench 'BestSplit|Featurize|WindowStats' -benchtime 3x -run '^$$' . ; \
	  $(GO) test -bench 'PredictFlat$$|PredictPointer$$|PredictFlatSingle$$' -benchtime 200x -run '^$$' . ; \
	  $(GO) test -bench 'ServingPredict' -benchtime 20x -run '^$$' ./internal/serving ) \
		| $(GO) run ./cmd/benchjson > BENCH_PR3.json
	@cat BENCH_PR3.json

# Worker-count sweeps: compare ns/op between workers=1 and workers=4+ for
# the parallel-layer speedup (single-core machines will show parity).
bench-workers:
	$(GO) test -bench 'Workers' -benchtime 1x -run '^$$'

# Bench smoke: one iteration of every kernel benchmark, no output files —
# catches bitrot in the benchmark code itself without timing anything.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BestSplit|WindowStats|PredictFlat$$|PredictPointer$$' -benchtime 1x .

# Loadgen smoke: runs the load generator's request/report path in both
# modes against an in-process httptest server (no sockets, no timing) —
# catches drift between loadgen's payloads and the serving API.
loadgen-smoke:
	$(GO) test -run 'TestLoadgenSmoke' -count 1 ./cmd/loadgen

# Chaos smoke: bounded fault-injection pass under the race detector. The
# loadgen chaos rotation (malformed JSON, oversized bodies, mid-body
# disconnects) must draw zero 5xx, and the serving chaos tests (50%
# monitoring blackout, shedding, deadlines, panic recovery, deterministic
# degraded answers) must hold with the detector watching.
chaos-smoke:
	$(GO) test -race -run 'TestLoadgenChaos' -count 1 ./cmd/loadgen
	$(GO) test -race -run 'TestChaos|TestShedding|TestPanicRecovery|TestRequestDeadline|TestDegradationOverHTTP' -count 1 ./internal/serving

# Soak smoke: a ~2s sustained run against an in-process server with
# sub-second /metrics scrapes — proves the soak loop, the Prometheus
# scrape parser and the SLO verdict math against the live exposition
# format, without booting a real daemon.
soak-smoke:
	$(GO) test -run 'TestLoadgenSoak|TestParseProm' -count 1 ./cmd/loadgen

# End-to-end soak: boots a real scoutd, drives sustained -soak traffic
# at it, and writes the SLO-judged report — client-side latency
# percentiles plus the server's own /metrics counters — to
# BENCH_PR6.json. Deliberately not part of `make ci` (it trains a model
# and times a real server); soak-smoke covers the plumbing there.
soak:
	$(GO) build -o /tmp/scouts-soak-scoutd ./cmd/scoutd
	@set -e; \
	/tmp/scouts-soak-scoutd -addr 127.0.0.1:8093 -days 30 -rate 6 -access-log & \
	pid=$$!; trap "kill $$pid 2>/dev/null || true" EXIT; \
	for i in $$(seq 1 120); do \
		curl -fsS http://127.0.0.1:8093/v1/health >/dev/null 2>&1 && break; \
		sleep 1; \
	done; \
	$(GO) run ./cmd/loadgen -url http://127.0.0.1:8093 -soak -mode batch -batch 32 \
		-seed 7 -days 30 -rate 6 -c 4 -duration 10s -scrape 1s -slo-p99 250 -out BENCH_PR6.json
	@cat BENCH_PR6.json

# Project-specific static analysis (cmd/scoutlint): determinism, map
# iteration order, reflective sorts, hot-path allocations, lock hygiene
# and HTTP input hardening. Exits non-zero on any unsuppressed finding;
# `-json` emits machine-readable findings for tooling.
lint:
	$(GO) run ./cmd/scoutlint ./...

ci: vet lint build race bench-smoke loadgen-smoke chaos-smoke soak-smoke

clean:
	$(GO) clean ./...
