# Standard entry points; `make ci` is what a pre-merge check should run.
# The race detector matters here: the training/evaluation layer fans work
# out across goroutines (internal/parallel) and the serving layer hot-swaps
# models under live traffic.

GO ?= go

.PHONY: all build vet test race bench ci clean

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full suite under the race detector. Slower (the detector costs ~5-10x),
# but it is the only gate that exercises the concurrent feature cache,
# parallel forest training and the serving hot-swap path for real races.
race:
	$(GO) test -race ./...

# Kernel benchmarks: the presorted split finder vs the retained seed
# kernel, aggregate-backed featurization vs window materialization, and the
# O(log n) window aggregates vs a full scan. Results land in BENCH_PR2.json
# (ns/op, allocs/op) via cmd/benchjson; compare the paired sub-benchmarks.
bench:
	$(GO) test -bench 'BestSplit|Featurize|WindowStats' -benchtime 3x -run '^$$' . \
		| $(GO) run ./cmd/benchjson > BENCH_PR2.json
	@cat BENCH_PR2.json

# Worker-count sweeps: compare ns/op between workers=1 and workers=4+ for
# the parallel-layer speedup (single-core machines will show parity).
bench-workers:
	$(GO) test -bench 'Workers' -benchtime 1x -run '^$$'

# Bench smoke: one iteration of every kernel benchmark, no output files —
# catches bitrot in the benchmark code itself without timing anything.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BestSplit|WindowStats' -benchtime 1x .

ci: vet build race bench-smoke

clean:
	$(GO) clean ./...
