# Standard entry points; `make ci` is what a pre-merge check should run.
# The race detector matters here: the training/evaluation layer fans work
# out across goroutines (internal/parallel) and the serving layer hot-swaps
# models under live traffic.

GO ?= go

.PHONY: all build vet test race bench ci clean

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full suite under the race detector. Slower (the detector costs ~5-10x),
# but it is the only gate that exercises the concurrent feature cache,
# parallel forest training and the serving hot-swap path for real races.
race:
	$(GO) test -race ./...

# Worker-count sweeps: compare ns/op between workers=1 and workers=4+ for
# the parallel-layer speedup (single-core machines will show parity).
bench:
	$(GO) test -bench 'Workers' -benchtime 1x -run '^$$'

ci: vet build race

clean:
	$(GO) clean ./...
