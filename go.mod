module scouts

go 1.22
