// Command scoutgw fronts a fleet of scoutd replicas: it
// consistent-hash-shards incidents across the fleet with bounded-load
// spillover, retries failed attempts on different replicas with
// jittered backoff, hedges tail-latency requests, circuit-breaks
// replicas that keep failing, and aggregates per-team verdicts into a
// ranked routing recommendation (DESIGN.md §14).
//
// Usage:
//
//	scoutgw -addr :8090 \
//	        -replica a=phynet=http://127.0.0.1:8081 \
//	        -replica b=phynet=http://127.0.0.1:8082 \
//	        [-max-attempts 3] [-per-try-timeout 5s] [-replica-budget 32] \
//	        [-hedge-after 0] [-probe-interval 1s] [-top-k 3] [-seed 1]
//
// Each -replica is name=team=url; replicas sharing a team form that
// team's failover set. -hedge-after 0 derives the hedge delay from the
// observed upstream p99; a negative value disables hedging.
//
// Endpoints:
//
//	POST /v1/predict?team=T   proxy to T's shard (response verbatim)
//	POST /v1/route            fan out to every team, rank by responsibility
//	GET  /v1/health           fleet + per-replica breaker/drain state
//	POST /v1/reload           fan reload out to every replica (no retries)
//	POST /v1/drain            {"replica": "a"} — graceful removal (restore: true re-adds)
//	GET  /metrics             Prometheus text exposition of scout_gw_* series
//
// On SIGINT/SIGTERM the gateway marks every replica draining (no new
// upstream work), stops its prober, and drains in-flight client
// requests before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"scouts/internal/faults"
	"scouts/internal/gateway"
)

// replicaFlags collects repeated -replica name=team=url values.
type replicaFlags []gateway.ReplicaConfig

func (r *replicaFlags) String() string {
	parts := make([]string, len(*r))
	for i, rc := range *r {
		parts[i] = rc.Name + "=" + rc.Team + "=" + rc.URL
	}
	return strings.Join(parts, ",")
}

func (r *replicaFlags) Set(v string) error {
	parts := strings.SplitN(v, "=", 3)
	if len(parts) != 3 || parts[0] == "" || parts[1] == "" || parts[2] == "" {
		return fmt.Errorf("want name=team=url, got %q", v)
	}
	*r = append(*r, gateway.ReplicaConfig{Name: parts[0], Team: parts[1], URL: parts[2]})
	return nil
}

func main() {
	var replicas replicaFlags
	addr := flag.String("addr", ":8090", "listen address")
	flag.Var(&replicas, "replica", "replica as name=team=url (repeatable)")
	maxAttempts := flag.Int("max-attempts", 3, "max tries per retriable request, first attempt included")
	perTryTimeout := flag.Duration("per-try-timeout", 5*time.Second, "deadline per upstream attempt")
	replicaBudget := flag.Int64("replica-budget", 32, "max in-flight requests per replica; beyond it the shard spills")
	hedgeAfter := flag.Duration("hedge-after", 0, "hedge delay (0 = adaptive from observed p99, negative = no hedging)")
	probeInterval := flag.Duration("probe-interval", time.Second, "active health-probe period")
	breakerTrip := flag.Int("breaker-trip", 5, "consecutive failures that open a replica's breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", 2*time.Second, "open-breaker cooldown before a probe is allowed")
	topK := flag.Int("top-k", 3, "default ranking size for /v1/route")
	seed := flag.Int64("seed", 1, "backoff-jitter seed")
	flag.Parse()

	logger := log.New(os.Stderr, "scoutgw: ", log.LstdFlags)
	if err := run(*addr, gateway.Config{
		Replicas:      replicas,
		MaxAttempts:   *maxAttempts,
		PerTryTimeout: *perTryTimeout,
		ReplicaBudget: *replicaBudget,
		HedgeAfter:    *hedgeAfter,
		ProbeInterval: *probeInterval,
		Breaker:       faults.ReqBreakerParams{Trip: *breakerTrip, Cooldown: *breakerCooldown},
		TopK:          *topK,
		Seed:          *seed,
		Logger:        logger,
	}, logger); err != nil {
		logger.Fatal(err)
	}
}

func run(addr string, cfg gateway.Config, logger *log.Logger) error {
	gw, err := gateway.New(cfg)
	if err != nil {
		return err
	}
	logger.Printf("fronting %d replica(s) across teams %v", len(cfg.Replicas), gw.Teams())

	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           gw.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
		ErrorLog:          logger,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	proberCtx, stopProber := context.WithCancel(ctx)
	defer stopProber()
	proberDone := make(chan struct{}, 1)
	go func() {
		gw.RunProber(proberCtx)
		proberDone <- struct{}{}
	}()

	errCh := make(chan error, 1)
	go func() {
		logger.Printf("gateway on %s", addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	logger.Printf("signal received; draining fleet and in-flight requests")
	gw.DrainAll()
	stopProber()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	<-proberDone
	logger.Printf("drained; bye")
	return nil
}
