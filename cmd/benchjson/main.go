// Command benchjson converts `go test -bench` output on stdin into a JSON
// document on stdout, so benchmark runs can be committed and diffed
// (BENCH_PR2.json, BENCH_PR3.json) without scraping the text format. Input
// may concatenate runs from several packages (as `make bench` does); each
// result carries the package it came from. Only the standard library is
// used.
//
// Usage:
//
//	go test -bench 'BestSplit|Featurize|WindowStats' -run '^$' . | benchjson > BENCH_PR2.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Pkg         string  `json:"pkg,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// Document is the full converted run. Pkg is kept for single-package runs
// (empty when the input mixes packages — read each result's pkg instead).
type Document struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	doc := Document{Results: []Result{}}
	pkgs := map[string]bool{}
	cur := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			cur = strings.TrimPrefix(line, "pkg: ")
			pkgs[cur] = true
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line); ok {
				r.Pkg = cur
				doc.Results = append(doc.Results, r)
			}
		}
	}
	if len(pkgs) == 1 {
		doc.Pkg = cur
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Println(string(out))
}

// parseLine parses one benchmark result line: name, iteration count, then
// (value, unit) pairs such as "123 ns/op" or "4 allocs/op".
func parseLine(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: f[0], Iterations: iters}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		switch f[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		}
	}
	return r, r.NsPerOp > 0
}
