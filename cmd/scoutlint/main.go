// Command scoutlint runs the repo's project-customized static-analysis
// suite (internal/lint) over the module: eight analyzers enforcing the
// determinism, hot-path, reflection-free-sort, lock-safety and
// serving-hardening invariants the earlier PRs established. Only the
// standard library is used.
//
// Usage:
//
//	scoutlint [-json] [-sarif file] [-baseline file] [-write-baseline file] [./... | dir]
//
// With no argument (or "./...") the module containing the working
// directory is linted. Findings print as
//
//	file:line:col: [check] message
//
// and the exit status is 1 when any unsuppressed finding remains, so
// `make ci` can gate on it. -json emits the same findings as a JSON
// document (count + findings array), committable and diffable in the
// same style as cmd/benchjson's output.
//
// -sarif writes the full finding set as a byte-deterministic SARIF
// 2.1.0 document (an uploadable CI artifact) in addition to the normal
// output. -baseline compares findings against a committed baseline:
// grandfathered findings are counted but do not fail the run, new ones
// print and exit 1 — the ratchet that lets a new analyzer land before
// every historical finding is fixed. -write-baseline records the
// current findings as that baseline and exits 0.
//
// Suppressions: a `//scout:allow <check> <reason>` comment on the
// flagged line (or the line above) silences that check there; the
// reason is mandatory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"scouts/internal/lint"
)

// Document is the -json output: the same shape conventions as
// cmd/benchjson (a small fixed header plus a results array).
type Document struct {
	Root     string            `json:"root"`
	Count    int               `json:"count"`
	Findings []lint.Diagnostic `json:"findings"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON instead of file:line text")
	sarifOut := flag.String("sarif", "", "also write findings as SARIF 2.1.0 to this `file`")
	baselinePath := flag.String("baseline", "", "compare findings against this baseline `file`; only new findings fail")
	writeBaseline := flag.String("write-baseline", "", "record the current findings as a baseline `file` and exit 0")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: scoutlint [-json] [-sarif file] [-baseline file] [-write-baseline file] [./... | dir]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	root, err := resolveRoot(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "scoutlint: %v\n", err)
		os.Exit(2)
	}
	diags, err := lint.Run(lint.Config{Root: root})
	if err != nil {
		fmt.Fprintf(os.Stderr, "scoutlint: %v\n", err)
		os.Exit(2)
	}
	// Report paths relative to the root: stable across machines, so the
	// JSON, SARIF and baseline forms can be committed and diffed.
	for i := range diags {
		if rel, err := filepath.Rel(root, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = filepath.ToSlash(rel)
		}
	}

	if *sarifOut != "" {
		doc, err := lint.SARIF(diags, lint.All())
		if err == nil {
			err = os.WriteFile(*sarifOut, doc, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "scoutlint: write sarif: %v\n", err)
			os.Exit(2)
		}
	}
	if *writeBaseline != "" {
		doc, err := lint.NewBaseline(diags).Marshal()
		if err == nil {
			err = os.WriteFile(*writeBaseline, doc, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "scoutlint: write baseline: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "scoutlint: baseline %s: %d finding(s) recorded\n", *writeBaseline, len(diags))
		return
	}
	grandfathered := 0
	if *baselinePath != "" {
		base, err := lint.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scoutlint: %v\n", err)
			os.Exit(2)
		}
		var old []lint.Diagnostic
		diags, old = base.Filter(diags)
		grandfathered = len(old)
	}

	if *jsonOut {
		doc := Document{Root: filepath.Base(root), Count: len(diags), Findings: diags}
		if doc.Findings == nil {
			doc.Findings = []lint.Diagnostic{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintf(os.Stderr, "scoutlint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if grandfathered > 0 {
		fmt.Fprintf(os.Stderr, "scoutlint: %d grandfathered finding(s) in baseline\n", grandfathered)
	}
	if len(diags) > 0 {
		if !*jsonOut {
			word := "finding(s)"
			if *baselinePath != "" {
				word = "new finding(s) not in baseline"
			}
			fmt.Fprintf(os.Stderr, "scoutlint: %d %s\n", len(diags), word)
		}
		os.Exit(1)
	}
}

// resolveRoot turns the argument into the directory to lint: "" and
// "./..." (or any path ending in "/...") mean the enclosing module —
// found by walking up from the path to the nearest go.mod — and a plain
// directory is linted as-is.
func resolveRoot(arg string) (string, error) {
	wantModule := false
	switch {
	case arg == "" || arg == "./...":
		arg, wantModule = ".", true
	case strings.HasSuffix(arg, "/..."):
		arg, wantModule = strings.TrimSuffix(arg, "/..."), true
	}
	abs, err := filepath.Abs(arg)
	if err != nil {
		return "", err
	}
	if info, err := os.Stat(abs); err != nil {
		return "", err
	} else if !info.IsDir() {
		return "", fmt.Errorf("%s is not a directory", arg)
	}
	if !wantModule {
		return abs, nil
	}
	for dir := abs; ; {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return abs, nil // no module found; lint the directory itself
		}
		dir = parent
	}
}
