// Command scoutlint runs the repo's project-customized static-analysis
// suite (internal/lint) over the module: eight analyzers enforcing the
// determinism, hot-path, reflection-free-sort, lock-safety and
// serving-hardening invariants the earlier PRs established. Only the
// standard library is used.
//
// Usage:
//
//	scoutlint [-json] [./... | dir]
//
// With no argument (or "./...") the module containing the working
// directory is linted. Findings print as
//
//	file:line:col: [check] message
//
// and the exit status is 1 when any unsuppressed finding remains, so
// `make ci` can gate on it. -json emits the same findings as a JSON
// document (count + findings array), committable and diffable in the
// same style as cmd/benchjson's output.
//
// Suppressions: a `//scout:allow <check> <reason>` comment on the
// flagged line (or the line above) silences that check there; the
// reason is mandatory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"scouts/internal/lint"
)

// Document is the -json output: the same shape conventions as
// cmd/benchjson (a small fixed header plus a results array).
type Document struct {
	Root     string            `json:"root"`
	Count    int               `json:"count"`
	Findings []lint.Diagnostic `json:"findings"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON instead of file:line text")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: scoutlint [-json] [./... | dir]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	root, err := resolveRoot(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "scoutlint: %v\n", err)
		os.Exit(2)
	}
	diags, err := lint.Run(lint.Config{Root: root})
	if err != nil {
		fmt.Fprintf(os.Stderr, "scoutlint: %v\n", err)
		os.Exit(2)
	}
	// Report paths relative to the root: stable across machines, so the
	// JSON form can be committed and diffed.
	for i := range diags {
		if rel, err := filepath.Rel(root, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = filepath.ToSlash(rel)
		}
	}

	if *jsonOut {
		doc := Document{Root: filepath.Base(root), Count: len(diags), Findings: diags}
		if doc.Findings == nil {
			doc.Findings = []lint.Diagnostic{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintf(os.Stderr, "scoutlint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "scoutlint: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
}

// resolveRoot turns the argument into the directory to lint: "" and
// "./..." (or any path ending in "/...") mean the enclosing module —
// found by walking up from the path to the nearest go.mod — and a plain
// directory is linted as-is.
func resolveRoot(arg string) (string, error) {
	wantModule := false
	switch {
	case arg == "" || arg == "./...":
		arg, wantModule = ".", true
	case strings.HasSuffix(arg, "/..."):
		arg, wantModule = strings.TrimSuffix(arg, "/..."), true
	}
	abs, err := filepath.Abs(arg)
	if err != nil {
		return "", err
	}
	if info, err := os.Stat(abs); err != nil {
		return "", err
	} else if !info.IsDir() {
		return "", fmt.Errorf("%s is not a directory", arg)
	}
	if !wantModule {
		return abs, nil
	}
	for dir := abs; ; {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return abs, nil // no module found; lint the directory itself
		}
		dir = parent
	}
}
