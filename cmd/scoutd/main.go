// Command scoutd trains a PhyNet Scout over a synthetic cloud and serves
// predictions over REST — the online half of the §6 deployment.
//
// Usage:
//
//	scoutd [-addr :8080] [-seed 7] [-days 90] [-rate 10]
//
// Endpoints:
//
//	GET  /v1/health
//	GET  /v1/model
//	POST /v1/reload
//	POST /v1/predict   {"title": ..., "body": ..., "components": [...], "time": h}
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"scouts/internal/cloudsim"
	"scouts/internal/core"
	"scouts/internal/serving"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	seed := flag.Int64("seed", 7, "world seed")
	days := flag.Int("days", 90, "days of synthetic incident history to train on")
	rate := flag.Float64("rate", 10, "incidents per day")
	flag.Parse()

	logger := log.New(os.Stderr, "scoutd: ", log.LstdFlags)
	if err := run(*addr, *seed, *days, *rate, logger); err != nil {
		logger.Fatal(err)
	}
}

func run(addr string, seed int64, days int, rate float64, logger *log.Logger) error {
	logger.Printf("generating %d days of synthetic cloud history (seed %d)", days, seed)
	gen := cloudsim.New(cloudsim.Params{Seed: seed, Days: days, IncidentsPerDay: rate})
	trace := gen.Generate()
	logger.Printf("%d incidents generated", trace.Len())

	cfg, err := core.ParseConfig(core.DefaultPhyNetConfig)
	if err != nil {
		return err
	}

	store := serving.NewStore()
	trainer := &serving.Trainer{Store: store}
	start := time.Now()
	scout, version, err := trainer.TrainAndPublish(core.TrainOptions{
		Config:    cfg,
		Topology:  gen.Topology(),
		Source:    gen.Telemetry(),
		Incidents: trace.Incidents,
		Seed:      seed,
	})
	if err != nil {
		return fmt.Errorf("training: %w", err)
	}
	logger.Printf("trained %s scout v%d in %v (top features: %v)",
		scout.Team(), version, time.Since(start).Round(time.Millisecond), scout.TopFeatures(3))

	srv := serving.NewServer(gen.Topology(), gen.Telemetry(), store, logger)
	if err := srv.Reload(); err != nil {
		return err
	}
	logger.Printf("serving on %s", addr)
	return http.ListenAndServe(addr, srv.Handler())
}
