// Command scoutd trains a PhyNet Scout over a synthetic cloud and serves
// predictions over REST — the online half of the §6 deployment.
//
// Usage:
//
//	scoutd [-addr :8080] [-seed 7] [-days 90] [-rate 10] [-workers 0]
//	       [-max-inflight 64] [-request-timeout 10s] [-min-coverage 0.25]
//	       [-instance scoutd] [-access-log] [-store DIR] [-quantized]
//
// -store points at a SaveStore directory. When it already holds model
// versions, scoutd serves the newest one instead of training at boot —
// scoutpack (.pack) versions load through the zero-re-derivation binary
// path — and POST /v1/reload re-reads the directory, so versions
// published by another process (an offline trainer, `scoutctl pack`)
// are picked up live. When the directory is empty, scoutd trains once,
// publishes the model into it as a scoutpack, and serves the scout it
// just trained directly (no snapshot round trip). -quantized serves
// batch predictions through the float32 cache-blocked kernel
// (DESIGN.md §12 has the |Δp| <= 1e-6 tolerance contract).
//
// Endpoints:
//
//	GET  /v1/health
//	GET  /v1/model
//	GET  /metrics    Prometheus text exposition (see README "Observability")
//	POST /v1/reload
//	POST /v1/predict   {"title": ..., "body": ..., "components": [...], "time": h}
//	POST /v1/predict:batch   {"items": [<predict request>, ...]} (max 256 items)
//
// The server is configured for exposure to untrusted clients (request
// bodies are size-capped, unknown JSON fields rejected, and header and
// idle timeouts bound slow-client resource usage) and drains gracefully on
// SIGINT/SIGTERM so in-flight predictions complete before exit. Overload
// and degraded monitoring are first-class: -max-inflight sheds excess
// requests with 429 + Retry-After, -request-timeout deadline-bounds every
// handler, and -min-coverage makes predictions fall back to legacy routing
// when too few monitoring datasets are live (DESIGN.md §10).
//
// The process observes itself (DESIGN.md §11): GET /metrics exports
// per-endpoint request and latency series, prediction/fallback/imputation
// counters, model gauges and per-dataset circuit-breaker state — scoutd
// serves its monitoring through faults.NewBreaker so dataset outages trip
// visibly. -access-log streams one JSON line per request (with the
// request ID every response echoes in X-Request-Id) to stderr; -instance
// prefixes those request IDs so replicas never collide.
//
// Startup training uses the presorted-columns split kernel, and request-time
// featurization answers window statistics through the monitoring aggregate
// layer instead of copying raw points (DESIGN.md §7) — keeping /v1/predict
// latency flat as telemetry history grows.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"scouts/internal/cloudsim"
	"scouts/internal/core"
	"scouts/internal/faults"
	"scouts/internal/ml/forest"
	"scouts/internal/serving"
	"scouts/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	seed := flag.Int64("seed", 7, "world seed")
	days := flag.Int("days", 90, "days of synthetic incident history to train on")
	rate := flag.Float64("rate", 10, "incidents per day")
	workers := flag.Int("workers", 0, "training/featurization workers (0 = GOMAXPROCS)")
	maxInflight := flag.Int("max-inflight", 64, "max concurrently-served requests; excess sheds with 429 (0 = unbounded)")
	reqTimeout := flag.Duration("request-timeout", 10*time.Second, "per-request deadline; overruns answer 503 (0 = none)")
	retryAfterBase := flag.Duration("retry-after-base", time.Second, "base Retry-After hint on 429 sheds; grows with sustained saturation")
	minCoverage := flag.Float64("min-coverage", 0.25, "monitoring-coverage floor below which predictions fall back (0 = disabled)")
	instance := flag.String("instance", "scoutd", "instance ID prefixed to request IDs (X-Request-Id)")
	accessLog := flag.Bool("access-log", false, "write one structured JSON line per request to stderr")
	storeDir := flag.String("store", "", "model store directory: serve from it when populated, publish into it after training")
	quantized := flag.Bool("quantized", false, "serve batch predictions through the quantized (float32, cache-blocked) kernel")
	flag.Parse()

	logger := log.New(os.Stderr, "scoutd: ", log.LstdFlags)
	opts := servingOptions{
		maxInflight: *maxInflight, requestTimeout: *reqTimeout, minCoverage: *minCoverage,
		retryAfterBase: *retryAfterBase,
		instance:       *instance, accessLog: *accessLog,
		storeDir: *storeDir, quantized: *quantized,
	}
	if err := run(*addr, *seed, *days, *rate, *workers, opts, logger); err != nil {
		logger.Fatal(err)
	}
}

// servingOptions carries the robustness knobs from flags into the server.
type servingOptions struct {
	maxInflight    int
	requestTimeout time.Duration
	minCoverage    float64
	retryAfterBase time.Duration
	instance       string
	accessLog      bool
	storeDir       string
	quantized      bool
}

func run(addr string, seed int64, days int, rate float64, workers int, opts servingOptions, logger *log.Logger) error {
	logger.Printf("generating %d days of synthetic cloud history (seed %d)", days, seed)
	gen := cloudsim.New(cloudsim.Params{Seed: seed, Days: days, IncidentsPerDay: rate})
	trace := gen.Generate()
	logger.Printf("%d incidents generated", trace.Len())

	cfg, err := core.ParseConfig(core.DefaultPhyNetConfig)
	if err != nil {
		return err
	}

	// A populated -store directory replaces boot-time training: serve the
	// newest stored version (scoutpacks load with zero re-derivation).
	store := serving.NewStore()
	if opts.storeDir != "" {
		if loaded, rep, err := serving.LoadStore(opts.storeDir); err == nil {
			store = loaded
			if len(rep.Quarantined) > 0 {
				logger.Printf("store: quarantined %d damaged model file(s)", len(rep.Quarantined))
			}
			logger.Printf("store: %d eager + %d lazy version(s) from %s", len(rep.Loaded), len(rep.Lazy), opts.storeDir)
		} else if !os.IsNotExist(err) {
			logger.Printf("store: %v (continuing with boot-time training)", err)
		}
	}

	var scout *core.Scout
	var version int
	if store.Versions() == 0 {
		trainer := &serving.Trainer{Store: store, Pack: true}
		start := time.Now()
		var err error
		scout, version, err = trainer.TrainAndPublish(core.TrainOptions{
			Config:    cfg,
			Topology:  gen.Topology(),
			Source:    gen.Telemetry(),
			Incidents: trace.Incidents,
			Seed:      seed,
			Workers:   workers,
		})
		if err != nil {
			return fmt.Errorf("training: %w", err)
		}
		logger.Printf("trained %s scout v%d in %v (top features: %v)",
			scout.Team(), version, time.Since(start).Round(time.Millisecond), scout.TopFeatures(3))
		if opts.storeDir != "" {
			if err := serving.SaveStore(store, opts.storeDir); err != nil {
				return fmt.Errorf("publishing to %s: %w", opts.storeDir, err)
			}
			logger.Printf("published scoutpack v%d to %s", version, opts.storeDir)
		}
	}

	// Serve through a circuit breaker even though training used the raw
	// source: request-time featurization must degrade in bounded time when
	// a dataset goes dark, and the breaker's per-dataset state is part of
	// the /metrics surface (scout_breaker_state, scout_breaker_trips_total).
	source := faults.NewBreaker(gen.Telemetry(), faults.BreakerParams{})
	srv := serving.NewServer(gen.Topology(), source, store, logger)
	srv.MaxInFlight = opts.maxInflight
	srv.RequestTimeout = opts.requestTimeout
	srv.RetryAfterBase = opts.retryAfterBase
	srv.Degradation = core.DegradationPolicy{MinCoverage: opts.minCoverage}
	srv.InstanceID = opts.instance
	if opts.quantized {
		srv.Kernel = forest.KernelQuant8
	}
	if opts.storeDir != "" {
		dir := opts.storeDir
		srv.ReloadStore = func() (*serving.Store, error) {
			st, rep, err := serving.LoadStore(dir)
			if err != nil {
				return nil, err
			}
			if len(rep.Quarantined) > 0 {
				logger.Printf("store: quarantined %d damaged model file(s) on reload", len(rep.Quarantined))
			}
			return st, nil
		}
	}
	if opts.accessLog {
		al := telemetry.NewLogger(os.Stderr, telemetry.F("component", "scoutd"), telemetry.F("instance", opts.instance))
		al.Now = time.Now
		srv.Access = al
	}
	if scout != nil {
		// The scout we just trained already has its flat inference views —
		// installing it directly skips the snapshot restore (and its flat
		// re-derivation) a Reload would pay.
		srv.Install(scout, version)
		logger.Printf("serving: installed freshly-trained scout v%d", version)
	} else if err := srv.Reload(); err != nil {
		return err
	}

	// A bare http.ListenAndServe has no header timeout (one slow-writing
	// client per connection holds a goroutine forever — slowloris) and no
	// way to drain on shutdown. Configure the server explicitly and tie
	// its lifetime to SIGINT/SIGTERM.
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
		ErrorLog:          logger,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		logger.Printf("serving on %s", addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	logger.Printf("signal received; draining in-flight requests")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Printf("drained; bye")
	return nil
}
