// Command scoutctl queries a running scoutd and manages model files.
//
// Usage:
//
//	scoutctl -addr http://localhost:8080 health
//	scoutctl -addr http://localhost:8080 model
//	scoutctl -addr http://localhost:8080 predict -title "..." -body "..." [-components a,b] [-time 100]
//	scoutctl pack <store-dir>
//	scoutctl inspect <model-file>
//
// pack converts every JSON-snapshot version in a SaveStore directory to
// the scoutpack binary format, writing model-%06d.pack next to each
// model-%06d.json (left in place; loads prefer the pack). inspect
// verifies one model file of either format and prints its summary —
// for scoutpack files that includes the forest shapes behind the
// checksummed sections.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"scouts/internal/core"
	"scouts/internal/serving"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "scoutd base URL")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	var err error
	switch args[0] {
	case "health":
		err = get(*addr + "/v1/health")
	case "model":
		err = get(*addr + "/v1/model")
	case "predict":
		err = predict(*addr, args[1:])
	case "pack":
		err = pack(args[1:])
	case "inspect":
		err = inspect(args[1:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "scoutctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: scoutctl [-addr URL] <health|model|predict> [predict flags]
       scoutctl pack <store-dir>
       scoutctl inspect <model-file>
predict flags:
  -title string      incident title (required)
  -body string       incident body
  -components a,b,c  structured component mentions
  -time float        trigger time in model hours`)
}

// pack converts a store directory's JSON snapshots to scoutpacks.
func pack(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("pack requires exactly one store directory")
	}
	converted, err := serving.RepackStore(args[0])
	if err != nil {
		return err
	}
	if len(converted) == 0 {
		fmt.Println("nothing to convert (all versions already packed)")
		return nil
	}
	for _, v := range converted {
		fmt.Printf("packed v%d -> model-%06d.pack\n", v, v)
	}
	return nil
}

// inspect verifies one model file and prints its summary as JSON.
func inspect(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("inspect requires exactly one model file")
	}
	m, err := serving.ReadModelFile(args[0])
	if err != nil {
		return err
	}
	out := map[string]any{
		"version":    m.Version,
		"team":       m.Team,
		"trained_at": m.TrainedAt,
		"bytes":      len(m.Snapshot),
		"format":     "json",
	}
	if core.IsScoutpack(m.Snapshot) {
		info, err := core.InspectPack(m.Snapshot)
		if err != nil {
			return err
		}
		out["format"] = "scoutpack"
		out["scoutpack"] = info
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func get(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return dump(resp)
}

func predict(addr string, args []string) error {
	fs := flag.NewFlagSet("predict", flag.ExitOnError)
	title := fs.String("title", "", "incident title")
	body := fs.String("body", "", "incident body")
	comps := fs.String("components", "", "comma-separated component mentions")
	at := fs.Float64("time", 0, "trigger time (model hours)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *title == "" && *body == "" {
		return fmt.Errorf("predict requires -title or -body")
	}
	req := serving.PredictRequest{Title: *title, Body: *body, Time: *at}
	if *comps != "" {
		req.Components = strings.Split(*comps, ",")
	}
	payload, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := http.Post(addr+"/v1/predict", "application/json", bytes.NewReader(payload))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return dump(resp)
}

// dump pretty-prints a JSON response body.
func dump(resp *http.Response) error {
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := json.Indent(&buf, raw, "", "  "); err != nil {
		// Not JSON: print raw.
		fmt.Println(string(raw))
		return nil
	}
	fmt.Println(buf.String())
	if resp.StatusCode >= 400 {
		return fmt.Errorf("server returned %s", resp.Status)
	}
	return nil
}
