// Command simulate generates a synthetic incident trace and writes it as
// JSON (one incident per line) for inspection or external analysis.
//
// Usage:
//
//	simulate [-days 90] [-rate 12] [-seed 1] [-o trace.jsonl] [-stats] [-workers 0]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"scouts/internal/cloudsim"
	"scouts/internal/incident"
	"scouts/internal/metrics"
)

func main() {
	days := flag.Int("days", 90, "trace length in days")
	rate := flag.Float64("rate", 12, "mean incidents per day")
	seed := flag.Int64("seed", 1, "world seed")
	out := flag.String("o", "-", "output file (- for stdout)")
	stats := flag.Bool("stats", false, "print §3-style summary statistics to stderr")
	workers := flag.Int("workers", 0, "cap OS-level parallelism (0 = all cores); generation itself is single-threaded and seed-deterministic")
	flag.Parse()

	// Generation replays one rng stream, so it cannot be parallelized
	// without changing the trace; -workers only bounds GOMAXPROCS (GC,
	// JSON encoding) for parity with the other commands' flag.
	if *workers > 0 {
		runtime.GOMAXPROCS(*workers)
	}

	if err := run(*days, *rate, *seed, *out, *stats); err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		os.Exit(1)
	}
}

func run(days int, rate float64, seed int64, out string, stats bool) error {
	gen := cloudsim.New(cloudsim.Params{Seed: seed, Days: days, IncidentsPerDay: rate})
	trace := gen.Generate()

	var w io.Writer = os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	defer bw.Flush()
	enc := json.NewEncoder(bw)
	for _, in := range trace.Incidents {
		if err := enc.Encode(in); err != nil {
			return err
		}
	}
	if stats {
		printStats(trace)
	}
	return nil
}

func printStats(trace *incident.Log) {
	var single, multi []float64
	for _, in := range trace.Incidents {
		if len(in.Teams()) == 1 {
			single = append(single, in.TotalTime())
		} else {
			multi = append(multi, in.TotalTime())
		}
	}
	through := trace.Involving(cloudsim.TeamPhyNet)
	innocent := 0
	for _, in := range through {
		if in.OwnerLabel != cloudsim.TeamPhyNet {
			innocent++
		}
	}
	fmt.Fprintf(os.Stderr, "incidents: %d (%d single-team, %d multi-team)\n",
		trace.Len(), len(single), len(multi))
	fmt.Fprintf(os.Stderr, "mean time-to-diagnosis: single %.2fh, multi %.2fh (%.1fx)\n",
		metrics.Mean(single), metrics.Mean(multi), metrics.Mean(multi)/metrics.Mean(single))
	fmt.Fprintf(os.Stderr, "PhyNet involved in %d incidents; innocent waypoint in %d (%.0f%%)\n",
		len(through), innocent, 100*float64(innocent)/float64(len(through)))
}
