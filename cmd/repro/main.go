// Command repro regenerates the paper's tables and figures over the
// synthetic cloud.
//
// Usage:
//
//	repro -exp list
//	repro -exp all [-days 180] [-rate 12] [-seed 20200810] [-workers 0]
//	repro -exp table1,fig7,fig15
//
// Experiment IDs: table1 table2 table3 table4 table5 headline latency
// fig1 fig2 fig3 fig4 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14
// fig15 fig16 storage outage.
//
// Forest training runs on the presorted-columns split kernel and
// featurization on the O(log n) window-aggregate layer (DESIGN.md §7);
// results are bit-identical to the seed kernels at any -workers value, and
// `make bench` records the kernel speedups in BENCH_PR2.json.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"scouts/internal/experiments"
)

// experiment couples an ID with its runner.
type experiment struct {
	id   string
	desc string
	run  func(lab *experiments.Lab) (fmt.Stringer, error)
}

func catalogue() []experiment {
	return []experiment{
		{"table1", "RF vs CPD+ vs NLP accuracy", func(l *experiments.Lab) (fmt.Stringer, error) {
			return experiments.Table1(l), nil
		}},
		{"table2", "the twelve monitoring datasets", func(l *experiments.Lab) (fmt.Stringer, error) {
			return experiments.Table2(l), nil
		}},
		{"table3", "operator survey (Appendix A)", func(l *experiments.Lab) (fmt.Stringer, error) {
			return experiments.Table3(), nil
		}},
		{"table4", "alternative supervised models", func(l *experiments.Lab) (fmt.Stringer, error) {
			r, err := experiments.Table4(l)
			return r, err
		}},
		{"table5", "feature deflation study", func(l *experiments.Lab) (fmt.Stringer, error) {
			r, err := experiments.Table5(l)
			return r, err
		}},
		{"headline", "§7.1 Scout vs baseline accuracy", func(l *experiments.Lab) (fmt.Stringer, error) {
			return experiments.Headline(l), nil
		}},
		{"latency", "§6 inference latency", func(l *experiments.Lab) (fmt.Stringer, error) {
			return experiments.InferenceLatency(l, 200), nil
		}},
		{"fig1", "PhyNet incident creators per day", func(l *experiments.Lab) (fmt.Stringer, error) {
			return experiments.Figure1(l), nil
		}},
		{"fig2", "diagnosis time: single vs multiple teams", func(l *experiments.Lab) (fmt.Stringer, error) {
			return experiments.Figure2(l), nil
		}},
		{"fig3", "reducible investigation time", func(l *experiments.Lab) (fmt.Stringer, error) {
			return experiments.Figure3(l), nil
		}},
		{"fig4", "PhyNet as innocent waypoint", func(l *experiments.Lab) (fmt.Stringer, error) {
			return experiments.Figure4(l), nil
		}},
		{"fig6", "baseline overhead-in distribution", func(l *experiments.Lab) (fmt.Stringer, error) {
			return experiments.Figure6(l), nil
		}},
		{"fig7", "Scout gain/overhead on mis-routed incidents", func(l *experiments.Lab) (fmt.Stringer, error) {
			return experiments.Figure7(l), nil
		}},
		{"fig8", "model-selector decider comparison", func(l *experiments.Lab) (fmt.Stringer, error) {
			r, err := experiments.Figure8(l)
			return r, err
		}},
		{"fig9", "deprecated monitoring systems", func(l *experiments.Lab) (fmt.Stringer, error) {
			r, err := experiments.Figure9(l, 7, 3)
			return r, err
		}},
		{"fig10", "retraining cadences over time", func(l *experiments.Lab) (fmt.Stringer, error) {
			r, err := experiments.Figure10(l)
			return r, err
		}},
		{"fig11", "gains on other teams' watchdog incidents", func(l *experiments.Lab) (fmt.Stringer, error) {
			return experiments.Figure11(l), nil
		}},
		{"fig12", "CRI replay: trigger after n teams", func(l *experiments.Lab) (fmt.Stringer, error) {
			return experiments.Figure12(l, 10), nil
		}},
		{"fig13", "class distances (all features)", func(l *experiments.Lab) (fmt.Stringer, error) {
			return experiments.Figure13(l), nil
		}},
		{"fig14", "class distances per component type", func(l *experiments.Lab) (fmt.Stringer, error) {
			return experiments.Figure14(l), nil
		}},
		{"fig15", "Scout Master: perfect Scouts", func(l *experiments.Lab) (fmt.Stringer, error) {
			return experiments.Figure15(l, 6, 60), nil
		}},
		{"fig16", "Scout Master: imperfect Scouts", func(l *experiments.Lab) (fmt.Stringer, error) {
			return experiments.Figure16(l, 12, 800), nil
		}},
		{"storage", "Appendix B rule-based Storage Scout", func(l *experiments.Lab) (fmt.Stringer, error) {
			return experiments.StorageScout(l), nil
		}},
		{"outage", "accuracy vs monitoring blackout fraction (JSON)", func(l *experiments.Lab) (fmt.Stringer, error) {
			r, err := experiments.OutageCurve(l, 0.25)
			return r, err
		}},
	}
}

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment IDs, 'all', or 'list'")
	days := flag.Int("days", 180, "trace length in days")
	rate := flag.Float64("rate", 12, "mean incidents per day")
	seed := flag.Int64("seed", 20200810, "world seed")
	workers := flag.Int("workers", 0, "training/evaluation workers (0 = GOMAXPROCS); results are identical at any setting")
	flag.Parse()

	cat := catalogue()
	if *exp == "list" {
		for _, e := range cat {
			fmt.Printf("  %-9s %s\n", e.id, e.desc)
		}
		return
	}

	want := map[string]bool{}
	if *exp == "all" {
		for _, e := range cat {
			want[e.id] = true
		}
	} else {
		for _, id := range strings.Split(*exp, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	for id := range want {
		found := false
		for _, e := range cat {
			if e.id == id {
				found = true
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "repro: unknown experiment %q (try -exp list)\n", id)
			os.Exit(2)
		}
	}

	fmt.Fprintf(os.Stderr, "repro: building lab (days=%d rate=%.0f seed=%d)...\n", *days, *rate, *seed)
	start := time.Now()
	lab, err := experiments.NewLab(experiments.LabParams{Seed: *seed, Days: *days, IncidentsPerDay: *rate, Workers: *workers})
	if err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "repro: lab ready in %v (%d incidents, %d train / %d test)\n",
		time.Since(start).Round(time.Second), lab.Log.Len(), len(lab.Train), len(lab.Test))

	for _, e := range cat {
		if !want[e.id] {
			continue
		}
		t0 := time.Now()
		r, err := e.run(lab)
		if err != nil {
			fmt.Fprintf(os.Stderr, "repro: %s: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Printf("==== %s (%s) [%v] ====\n%s\n", e.id, e.desc, time.Since(t0).Round(time.Millisecond), r)
	}
}
