// Command loadgen drives a running scoutd with synthetic predict traffic
// and reports throughput and latency percentiles as JSON on stdout — the
// measurement harness behind the serving numbers in README.md.
//
// Usage:
//
//	loadgen [-url http://localhost:8080] [-mode single|batch] [-batch 32]
//	        [-c 4] [-duration 10s] [-seed 7] [-days 30] [-rate 6] [-chaos]
//
// -chaos turns the generator adversarial: alongside valid predictions it
// rotates malformed JSON, bodies far over the server's size limit, and
// requests whose body is cut mid-transfer. The report then carries the
// per-status breakdown and the disconnect count, so a robustness smoke can
// assert "nothing but 2xx/4xx/429 came back and the server stayed up".
//
// The request corpus is generated from the same synthetic cloud simulator
// scoutd trains on (matching -seed/-days/-rate reproduces its incident
// titles and components; mismatches still score, they just answer through
// the fallback paths more often). -mode single posts one incident per
// /v1/predict call; -mode batch posts -batch incidents per
// /v1/predict:batch call. Latency is per HTTP request either way, so
// batch percentiles amortize -batch predictions per sample.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"scouts/internal/cloudsim"
	"scouts/internal/metrics"
	"scouts/internal/serving"
)

// Report is the JSON document loadgen emits.
type Report struct {
	Mode        string  `json:"mode"`
	BatchSize   int     `json:"batch_size,omitempty"`
	Concurrency int     `json:"concurrency"`
	DurationSec float64 `json:"duration_sec"`
	Requests    int     `json:"requests"`
	Predictions int     `json:"predictions"`
	Errors      int     `json:"errors"`
	QPS         float64 `json:"qps"`
	PredPerSec  float64 `json:"predictions_per_sec"`
	P50Ms       float64 `json:"p50_ms"`
	P95Ms       float64 `json:"p95_ms"`
	P99Ms       float64 `json:"p99_ms"`
	// StatusCounts breaks responses down by HTTP status ("200", "400",
	// "429", ...) — the evidence a chaos run leans on to show the server
	// answered abuse with 4xx instead of 5xx or a crash.
	StatusCounts map[string]int `json:"status_counts,omitempty"`
	// ChaosRequests counts the adversarial requests a -chaos run sent
	// (malformed, oversized, torn uploads). They are bookkept apart from
	// Requests so QPS and the latency percentiles describe only
	// well-formed traffic: a 2 MiB upload rejected at the size cap is
	// neither a served request nor a latency sample, and folding it in
	// (as earlier versions did) understated both numbers.
	ChaosRequests int `json:"chaos_requests,omitempty"`
	// ChaosStatusCounts is the status breakdown of ChaosRequests only.
	ChaosStatusCounts map[string]int `json:"chaos_status_counts,omitempty"`
	// Disconnects counts requests loadgen aborted mid-body on purpose
	// (chaos mode only); they are not errors, they are the experiment.
	Disconnects int `json:"disconnects,omitempty"`
	// Retries counts re-issued attempts after a 429: loadgen honors the
	// server's Retry-After hint (sleeps it out, then retries the same
	// payload) instead of hammering a saturated server with fresh
	// traffic. Kept apart from Requests so QPS still describes completed
	// requests.
	Retries int `json:"retries,omitempty"`
	// Shed counts requests whose final answer was 429 because the run's
	// deadline left no room to honor the hint — back-pressured by design,
	// not failed.
	Shed int `json:"shed,omitempty"`
}

func main() {
	url := flag.String("url", "http://localhost:8080", "scoutd base URL")
	mode := flag.String("mode", "single", "single (/v1/predict) or batch (/v1/predict:batch)")
	batch := flag.Int("batch", 32, "incidents per request in batch mode")
	conc := flag.Int("c", 4, "concurrent client goroutines")
	duration := flag.Duration("duration", 10*time.Second, "how long to drive load")
	seed := flag.Int64("seed", 7, "world seed for the request corpus")
	days := flag.Int("days", 30, "days of synthetic incidents in the corpus")
	rate := flag.Float64("rate", 6, "incidents per day in the corpus")
	chaos := flag.Bool("chaos", false, "interleave malformed JSON, oversized bodies and mid-body disconnects")
	soak := flag.Bool("soak", false, "sustained run with periodic /metrics scrapes and an SLO verdict")
	fleet := flag.Bool("fleet", false, "drive a scoutgw gateway and judge the zero-failed-non-shed fleet SLO")
	team := flag.String("team", "", "team query parameter for fleet mode (empty = gateway default)")
	killPID := flag.Int("kill-pid", 0, "fleet mode: SIGTERM this process mid-run (0 = no kill)")
	killAfter := flag.Duration("kill-after", 2*time.Second, "fleet mode: when to deliver the kill signal")
	sloP99 := flag.Float64("slo-p99", 250, "soak SLO: p99 latency ceiling in milliseconds")
	sloErrs := flag.Float64("slo-error-rate", 0.01, "soak SLO: max fraction of requests answered non-200 or failed")
	scrape := flag.Duration("scrape", 2*time.Second, "soak /metrics scrape interval")
	outPath := flag.String("out", "", "also write the JSON report to this file")
	flag.Parse()

	reqs := corpus(*seed, *days, *rate)
	var doc any
	var err error
	exitCode := 0
	switch {
	case *fleet:
		var fr FleetReport
		fr, err = runFleet(http.DefaultClient, *url, *team, *conc, *duration, *killPID, *killAfter, reqs)
		doc = fr
		if err == nil && !fr.SLO.Pass {
			exitCode = 2 // fleet SLO verdict failed; the report below says why
		}
	case *chaos:
		doc, err = runChaos(http.DefaultClient, *url, *conc, *duration, reqs)
	case *soak:
		var sr SoakReport
		sr, err = runSoak(http.DefaultClient, *url, *mode, *batch, *conc, *duration, *scrape,
			SLO{P99Ms: *sloP99, MaxErrorRate: *sloErrs}, reqs)
		doc = sr
		if err == nil && !sr.SLO.Pass {
			exitCode = 2 // SLO verdict failed; the report below says why
		}
	default:
		doc, err = runLoad(http.DefaultClient, *url, *mode, *batch, *conc, *duration, reqs)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	if *outPath != "" {
		if err := os.WriteFile(*outPath, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
	}
	fmt.Println(string(out))
	os.Exit(exitCode)
}

// corpus builds the request payloads from a synthetic trace.
func corpus(seed int64, days int, rate float64) []serving.PredictRequest {
	trace := cloudsim.New(cloudsim.Params{Seed: seed, Days: days, IncidentsPerDay: rate}).Generate()
	reqs := make([]serving.PredictRequest, 0, trace.Len())
	for _, in := range trace.Incidents {
		reqs = append(reqs, serving.PredictRequest{
			Title: in.Title, Body: in.Body, Components: in.Components, Time: in.CreatedAt,
		})
	}
	return reqs
}

// runLoad drives the server until the deadline and aggregates the report.
// It is the whole measurement path minus flag parsing, so tests can run it
// against an in-process httptest server.
func runLoad(client *http.Client, baseURL, mode string, batch, conc int, duration time.Duration, reqs []serving.PredictRequest) (Report, error) {
	if len(reqs) == 0 {
		return Report{}, fmt.Errorf("empty request corpus")
	}
	if conc < 1 {
		conc = 1
	}
	var path string
	var perReq int
	// Pre-encode the payload rotation once: the generator must not spend
	// its request budget on JSON encoding.
	var payloads [][]byte
	switch mode {
	case "single":
		path, perReq = "/v1/predict", 1
		for _, r := range reqs {
			b, err := json.Marshal(r)
			if err != nil {
				return Report{}, err
			}
			payloads = append(payloads, b)
		}
	case "batch":
		if batch < 1 || batch > serving.MaxBatchItems {
			return Report{}, fmt.Errorf("batch size %d out of range [1, %d]", batch, serving.MaxBatchItems)
		}
		path, perReq = "/v1/predict:batch", batch
		for lo := 0; lo+batch <= len(reqs); lo += batch {
			b, err := json.Marshal(serving.BatchPredictRequest{Items: reqs[lo : lo+batch]})
			if err != nil {
				return Report{}, err
			}
			payloads = append(payloads, b)
		}
		if len(payloads) == 0 {
			return Report{}, fmt.Errorf("corpus of %d incidents is smaller than one batch of %d", len(reqs), batch)
		}
	default:
		return Report{}, fmt.Errorf("unknown mode %q (want single or batch)", mode)
	}

	rep := drive(client, baseURL, path, payloads, perReq, conc, duration)
	rep.Mode = mode
	if mode == "batch" {
		rep.BatchSize = batch
	}
	return rep, nil
}

// retryHint reads a 429's Retry-After as a sleepable duration: the
// delay-seconds form, defaulting to 1s when absent or unparseable, and
// capped at 5s so a hostile hint cannot park a worker for the run.
func retryHint(h http.Header) time.Duration {
	secs, err := strconv.Atoi(h.Get("Retry-After"))
	if err != nil || secs < 1 {
		return time.Second
	}
	return min(time.Duration(secs)*time.Second, 5*time.Second)
}

// drive is the shared measurement loop behind runLoad and the fleet
// mode: conc workers rotate through the payloads until the deadline. A
// 429 is honored, not hammered — the worker sleeps the server's
// Retry-After hint and re-issues the same payload, bookkeeping the
// retry; only when the deadline leaves no room for the hint does the
// request count as shed.
func drive(client *http.Client, baseURL, path string, payloads [][]byte, perReq, conc int, duration time.Duration) Report {
	type worker struct {
		latencies []float64 // milliseconds
		errors    int
		retries   int
		shed      int
		statuses  map[int]int
	}
	workers := make([]worker, conc)
	deadline := time.Now().Add(duration)
	done := make(chan int, conc)
	for w := 0; w < conc; w++ {
		go func(w int) {
			defer func() { done <- w }()
			wk := &workers[w]
			wk.statuses = map[int]int{}
			for k := w; time.Now().Before(deadline); k++ {
				body := payloads[k%len(payloads)]
				for {
					start := time.Now()
					resp, err := client.Post(baseURL+path, "application/json", bytes.NewReader(body))
					if err != nil {
						wk.errors++
						break
					}
					_, _ = bytes.NewBuffer(nil).ReadFrom(resp.Body)
					status := resp.StatusCode
					hint := retryHint(resp.Header)
					resp.Body.Close()
					wk.statuses[status]++
					if status == http.StatusTooManyRequests {
						if time.Now().Add(hint).After(deadline) {
							wk.shed++
							break
						}
						time.Sleep(hint)
						wk.retries++
						continue
					}
					if status != http.StatusOK {
						wk.errors++
						break
					}
					wk.latencies = append(wk.latencies, float64(time.Since(start).Microseconds())/1000)
					break
				}
			}
		}(w)
	}
	for range workers {
		<-done
	}

	rep := Report{Concurrency: conc, DurationSec: duration.Seconds()}
	var all []float64
	for i := range workers {
		all = append(all, workers[i].latencies...)
		rep.Errors += workers[i].errors
		rep.Retries += workers[i].retries
		rep.Shed += workers[i].shed
		mergeStatuses(&rep.StatusCounts, workers[i].statuses)
	}
	rep.Requests = len(all)
	rep.Predictions = len(all) * perReq
	if duration > 0 {
		rep.QPS = float64(rep.Requests) / duration.Seconds()
		rep.PredPerSec = float64(rep.Predictions) / duration.Seconds()
	}
	// Quantile of an empty sample is NaN, which JSON cannot encode; an
	// all-errors run reports zeros and a nonzero error count instead.
	if len(all) > 0 {
		sort.Float64s(all)
		rep.P50Ms = metrics.Quantile(all, 0.50)
		rep.P95Ms = metrics.Quantile(all, 0.95)
		rep.P99Ms = metrics.Quantile(all, 0.99)
	}
	return rep
}

// mergeStatuses folds one worker's status histogram into a report map.
func mergeStatuses(dst *map[string]int, statuses map[int]int) {
	for code, n := range statuses {
		if *dst == nil {
			*dst = map[string]int{}
		}
		(*dst)[strconv.Itoa(code)] += n
	}
}

// abortReader feeds a body prefix then fails the read, so the HTTP client
// aborts the request mid-body — the torn-upload case a public endpoint
// sees daily and a server must survive without a 5xx or a crash.
type abortReader struct {
	data []byte
	off  int
}

var errChaosDisconnect = errors.New("chaos: simulated mid-body disconnect")

func (r *abortReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, errChaosDisconnect
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

// runChaos drives the server with a deterministic rotation of valid and
// adversarial requests: well-formed predictions, malformed JSON, bodies
// far past the server's 1 MiB predict limit, and uploads disconnected
// mid-body. It reports the status breakdown instead of judging — the
// caller (the `make ci` chaos smoke) decides which statuses are
// acceptable; the hard requirement is only that every request gets an
// orderly HTTP answer or a client-side abort, never a hung connection.
func runChaos(client *http.Client, baseURL string, conc int, duration time.Duration, reqs []serving.PredictRequest) (Report, error) {
	if len(reqs) == 0 {
		return Report{}, fmt.Errorf("empty request corpus")
	}
	if conc < 1 {
		conc = 1
	}
	var valid [][]byte
	for _, r := range reqs {
		b, err := json.Marshal(r)
		if err != nil {
			return Report{}, err
		}
		valid = append(valid, b)
	}
	// One oversized body, built once: 2 MiB of syntactically valid JSON,
	// double the server's single-predict limit.
	oversized := []byte(`{"title":"` + strings.Repeat("a", 2<<20) + `"}`)

	type worker struct {
		latencies     []float64
		errors        int
		disconnects   int
		statuses      map[int]int
		chaosStatuses map[int]int
	}
	workers := make([]worker, conc)
	deadline := time.Now().Add(duration)
	done := make(chan int, conc)
	for w := 0; w < conc; w++ {
		go func(w int) {
			defer func() { done <- w }()
			wk := &workers[w]
			wk.statuses = map[int]int{}
			wk.chaosStatuses = map[int]int{}
			for k := w; time.Now().Before(deadline); k++ {
				body := valid[k%len(valid)]
				start := time.Now()
				var resp *http.Response
				var err error
				adversarial := k%4 != 0
				switch k % 4 {
				case 0: // well-formed: the control group.
					resp, err = client.Post(baseURL+"/v1/predict", "application/json", bytes.NewReader(body))
				case 1: // malformed JSON: truncated object.
					broken := body[:len(body)/2]
					resp, err = client.Post(baseURL+"/v1/predict", "application/json", bytes.NewReader(broken))
				case 2: // oversized body: past MaxBytesReader.
					resp, err = client.Post(baseURL+"/v1/predict", "application/json", bytes.NewReader(oversized))
				case 3: // mid-body disconnect.
					resp, err = client.Post(baseURL+"/v1/predict", "application/json", &abortReader{data: body[:len(body)/2]})
					if err != nil {
						wk.disconnects++
						continue
					}
				}
				if err != nil {
					wk.errors++
					continue
				}
				_, _ = bytes.NewBuffer(nil).ReadFrom(resp.Body)
				resp.Body.Close()
				// Adversarial traffic is bookkept apart: its responses land
				// in the chaos histogram and never in the latency samples,
				// so QPS and percentiles describe well-formed traffic only.
				if adversarial {
					wk.chaosStatuses[resp.StatusCode]++
					continue
				}
				wk.statuses[resp.StatusCode]++
				if resp.StatusCode == http.StatusOK {
					wk.latencies = append(wk.latencies, float64(time.Since(start).Microseconds())/1000)
				}
			}
		}(w)
	}
	for range workers {
		<-done
	}

	rep := Report{Mode: "chaos", Concurrency: conc, DurationSec: duration.Seconds()}
	var all []float64
	for i := range workers {
		all = append(all, workers[i].latencies...)
		rep.Errors += workers[i].errors
		rep.Disconnects += workers[i].disconnects
		mergeStatuses(&rep.StatusCounts, workers[i].statuses)
		mergeStatuses(&rep.ChaosStatusCounts, workers[i].chaosStatuses)
	}
	for _, n := range rep.StatusCounts {
		rep.Requests += n
	}
	for _, n := range rep.ChaosStatusCounts {
		rep.ChaosRequests += n
	}
	rep.ChaosRequests += rep.Disconnects
	rep.Predictions = len(all)
	if duration > 0 {
		rep.QPS = float64(rep.Requests) / duration.Seconds()
	}
	if len(all) > 0 {
		sort.Float64s(all)
		rep.P50Ms = metrics.Quantile(all, 0.50)
		rep.P95Ms = metrics.Quantile(all, 0.95)
		rep.P99Ms = metrics.Quantile(all, 0.99)
	}
	return rep, nil
}
