// Command loadgen drives a running scoutd with synthetic predict traffic
// and reports throughput and latency percentiles as JSON on stdout — the
// measurement harness behind the serving numbers in README.md.
//
// Usage:
//
//	loadgen [-url http://localhost:8080] [-mode single|batch] [-batch 32]
//	        [-c 4] [-duration 10s] [-seed 7] [-days 30] [-rate 6]
//
// The request corpus is generated from the same synthetic cloud simulator
// scoutd trains on (matching -seed/-days/-rate reproduces its incident
// titles and components; mismatches still score, they just answer through
// the fallback paths more often). -mode single posts one incident per
// /v1/predict call; -mode batch posts -batch incidents per
// /v1/predict:batch call. Latency is per HTTP request either way, so
// batch percentiles amortize -batch predictions per sample.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"time"

	"scouts/internal/cloudsim"
	"scouts/internal/metrics"
	"scouts/internal/serving"
)

// Report is the JSON document loadgen emits.
type Report struct {
	Mode        string  `json:"mode"`
	BatchSize   int     `json:"batch_size,omitempty"`
	Concurrency int     `json:"concurrency"`
	DurationSec float64 `json:"duration_sec"`
	Requests    int     `json:"requests"`
	Predictions int     `json:"predictions"`
	Errors      int     `json:"errors"`
	QPS         float64 `json:"qps"`
	PredPerSec  float64 `json:"predictions_per_sec"`
	P50Ms       float64 `json:"p50_ms"`
	P95Ms       float64 `json:"p95_ms"`
	P99Ms       float64 `json:"p99_ms"`
}

func main() {
	url := flag.String("url", "http://localhost:8080", "scoutd base URL")
	mode := flag.String("mode", "single", "single (/v1/predict) or batch (/v1/predict:batch)")
	batch := flag.Int("batch", 32, "incidents per request in batch mode")
	conc := flag.Int("c", 4, "concurrent client goroutines")
	duration := flag.Duration("duration", 10*time.Second, "how long to drive load")
	seed := flag.Int64("seed", 7, "world seed for the request corpus")
	days := flag.Int("days", 30, "days of synthetic incidents in the corpus")
	rate := flag.Float64("rate", 6, "incidents per day in the corpus")
	flag.Parse()

	reqs := corpus(*seed, *days, *rate)
	rep, err := runLoad(http.DefaultClient, *url, *mode, *batch, *conc, *duration, reqs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	fmt.Println(string(out))
}

// corpus builds the request payloads from a synthetic trace.
func corpus(seed int64, days int, rate float64) []serving.PredictRequest {
	trace := cloudsim.New(cloudsim.Params{Seed: seed, Days: days, IncidentsPerDay: rate}).Generate()
	reqs := make([]serving.PredictRequest, 0, trace.Len())
	for _, in := range trace.Incidents {
		reqs = append(reqs, serving.PredictRequest{
			Title: in.Title, Body: in.Body, Components: in.Components, Time: in.CreatedAt,
		})
	}
	return reqs
}

// runLoad drives the server until the deadline and aggregates the report.
// It is the whole measurement path minus flag parsing, so tests can run it
// against an in-process httptest server.
func runLoad(client *http.Client, baseURL, mode string, batch, conc int, duration time.Duration, reqs []serving.PredictRequest) (Report, error) {
	if len(reqs) == 0 {
		return Report{}, fmt.Errorf("empty request corpus")
	}
	if conc < 1 {
		conc = 1
	}
	var path string
	var perReq int
	// Pre-encode the payload rotation once: the generator must not spend
	// its request budget on JSON encoding.
	var payloads [][]byte
	switch mode {
	case "single":
		path, perReq = "/v1/predict", 1
		for _, r := range reqs {
			b, err := json.Marshal(r)
			if err != nil {
				return Report{}, err
			}
			payloads = append(payloads, b)
		}
	case "batch":
		if batch < 1 || batch > serving.MaxBatchItems {
			return Report{}, fmt.Errorf("batch size %d out of range [1, %d]", batch, serving.MaxBatchItems)
		}
		path, perReq = "/v1/predict:batch", batch
		for lo := 0; lo+batch <= len(reqs); lo += batch {
			b, err := json.Marshal(serving.BatchPredictRequest{Items: reqs[lo : lo+batch]})
			if err != nil {
				return Report{}, err
			}
			payloads = append(payloads, b)
		}
		if len(payloads) == 0 {
			return Report{}, fmt.Errorf("corpus of %d incidents is smaller than one batch of %d", len(reqs), batch)
		}
	default:
		return Report{}, fmt.Errorf("unknown mode %q (want single or batch)", mode)
	}

	type worker struct {
		latencies []float64 // milliseconds
		errors    int
	}
	workers := make([]worker, conc)
	deadline := time.Now().Add(duration)
	done := make(chan int, conc)
	for w := 0; w < conc; w++ {
		go func(w int) {
			defer func() { done <- w }()
			wk := &workers[w]
			for k := w; time.Now().Before(deadline); k++ {
				body := payloads[k%len(payloads)]
				start := time.Now()
				resp, err := client.Post(baseURL+path, "application/json", bytes.NewReader(body))
				if err != nil {
					wk.errors++
					continue
				}
				_, _ = bytes.NewBuffer(nil).ReadFrom(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					wk.errors++
					continue
				}
				wk.latencies = append(wk.latencies, float64(time.Since(start).Microseconds())/1000)
			}
		}(w)
	}
	for range workers {
		<-done
	}

	rep := Report{Mode: mode, Concurrency: conc, DurationSec: duration.Seconds()}
	if mode == "batch" {
		rep.BatchSize = batch
	}
	var all []float64
	for i := range workers {
		all = append(all, workers[i].latencies...)
		rep.Errors += workers[i].errors
	}
	rep.Requests = len(all)
	rep.Predictions = len(all) * perReq
	if duration > 0 {
		rep.QPS = float64(rep.Requests) / duration.Seconds()
		rep.PredPerSec = float64(rep.Predictions) / duration.Seconds()
	}
	// Quantile of an empty sample is NaN, which JSON cannot encode; an
	// all-errors run reports zeros and a nonzero error count instead.
	if len(all) > 0 {
		sort.Float64s(all)
		rep.P50Ms = metrics.Quantile(all, 0.50)
		rep.P95Ms = metrics.Quantile(all, 0.95)
		rep.P99Ms = metrics.Quantile(all, 0.99)
	}
	return rep, nil
}
