package main

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"scouts/internal/serving"
)

// SLO is the pass/fail bar a soak run is judged against.
type SLO struct {
	// P99Ms is the latency ceiling: the run fails if p99 exceeds it.
	P99Ms float64 `json:"p99_ms"`
	// MaxErrorRate is the highest acceptable fraction of driven requests
	// that failed in transport or answered non-200.
	MaxErrorRate float64 `json:"max_error_rate"`
}

// SLOResult is the verdict: the measured numbers next to the targets,
// and one violation string per broken promise — empty means Pass.
type SLOResult struct {
	Target     SLO      `json:"target"`
	P99Ms      float64  `json:"p99_ms"`
	ErrorRate  float64  `json:"error_rate"`
	Pass       bool     `json:"pass"`
	Violations []string `json:"violations,omitempty"`
}

// SoakReport is the JSON document a -soak run emits: the usual load
// report plus the server's own telemetry as scraped from /metrics and
// the SLO verdict. This is the file `make soak` writes to BENCH_PR6.json.
type SoakReport struct {
	Report
	// ScrapeIntervalSec and Scrapes describe the /metrics polling the run
	// performed alongside the load.
	ScrapeIntervalSec float64 `json:"scrape_interval_sec"`
	Scrapes           int     `json:"scrapes"`
	ScrapeErrors      int     `json:"scrape_errors"`
	// Metrics is the final scrape, parsed: every non-histogram-bucket
	// scout_* series keyed by its full name{labels} signature. The
	// server's view of the run — requests it counted, predictions by
	// model, breaker states, sheds, timeouts, recovered panics.
	Metrics map[string]float64 `json:"metrics,omitempty"`
	SLO     SLOResult          `json:"slo"`
}

// runSoak drives sustained load (reusing runLoad, so the traffic and the
// report math are exactly the normal measurement path) while polling
// GET /metrics every scrapeEvery, then judges the run against the SLO.
// The server-side counters from the final scrape ride along in the
// report so a soak artifact carries both views — what the client saw and
// what the server recorded.
func runSoak(client *http.Client, baseURL, mode string, batch, conc int,
	duration, scrapeEvery time.Duration, slo SLO, reqs []serving.PredictRequest) (SoakReport, error) {
	if scrapeEvery <= 0 {
		scrapeEvery = time.Second
	}
	sr := SoakReport{ScrapeIntervalSec: scrapeEvery.Seconds()}

	stop := make(chan struct{})
	scraped := make(chan struct{})
	go func() {
		defer close(scraped)
		tick := time.NewTicker(scrapeEvery)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				if m, err := scrapeMetrics(client, baseURL); err != nil {
					sr.ScrapeErrors++
				} else {
					sr.Metrics = m
				}
				sr.Scrapes++
			}
		}
	}()

	rep, err := runLoad(client, baseURL, mode, batch, conc, duration, reqs)
	close(stop)
	<-scraped
	if err != nil {
		return sr, err
	}
	sr.Report = rep
	sr.Mode = "soak-" + mode

	// One final scrape after the load stops, so Metrics reflects every
	// request the run drove rather than the last mid-flight sample.
	if m, scrapeErr := scrapeMetrics(client, baseURL); scrapeErr != nil {
		sr.ScrapeErrors++
	} else {
		sr.Metrics = m
		sr.Scrapes++
	}

	sr.SLO = judge(slo, &sr)
	return sr, nil
}

// judge renders the verdict from the client-side report and the final
// server-side scrape.
func judge(slo SLO, sr *SoakReport) SLOResult {
	res := SLOResult{Target: slo, P99Ms: sr.P99Ms}
	total := sr.Errors
	ok := 0
	for code, n := range sr.StatusCounts {
		total += n
		if code == "200" {
			ok += n
		}
	}
	if total > 0 {
		res.ErrorRate = float64(total-ok) / float64(total)
	}
	if total == 0 {
		res.Violations = append(res.Violations, "no requests completed")
	}
	if sr.P99Ms > slo.P99Ms {
		res.Violations = append(res.Violations,
			fmt.Sprintf("p99 %.2fms exceeds SLO %.2fms", sr.P99Ms, slo.P99Ms))
	}
	if res.ErrorRate > slo.MaxErrorRate {
		res.Violations = append(res.Violations,
			fmt.Sprintf("error rate %.4f exceeds SLO %.4f", res.ErrorRate, slo.MaxErrorRate))
	}
	// The server's own counters veto too: a recovered panic means a
	// request crashed a handler even if the client only saw a tidy 500.
	if n := sr.Metrics["scout_http_panics_recovered_total"]; n > 0 {
		res.Violations = append(res.Violations,
			fmt.Sprintf("server recovered %.0f handler panics during the run", n))
	}
	res.Pass = len(res.Violations) == 0
	return res
}

// scrapeMetrics GETs /metrics and parses the Prometheus text format into
// a flat map. Histogram bucket series are skipped — the cumulative
// bucket counts are scrape plumbing, not run evidence — while _sum and
// _count stay, so server-side latency totals survive into the report.
func scrapeMetrics(client *http.Client, baseURL string) (map[string]float64, error) {
	resp, err := client.Get(baseURL + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/metrics answered %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return parseProm(string(body))
}

// parseProm parses Prometheus 0.0.4 text exposition: one "series value"
// per line, # lines ignored. Series with an le label (histogram buckets)
// are dropped.
func parseProm(text string) (map[string]float64, error) {
	out := map[string]float64{}
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("unparseable metrics line %q", line)
		}
		series, val := line[:sp], line[sp+1:]
		if strings.Contains(series, `le="`) {
			continue
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("bad sample %q: %v", line, err)
		}
		out[series] = f
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("metrics payload carried no samples")
	}
	return out, nil
}

// metricNames returns the sorted series keys — handy for tests and for
// eyeballing what a scrape carried.
func metricNames(m map[string]float64) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
