package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"syscall"
	"time"

	"scouts/internal/serving"
)

// FleetReport is the JSON document a -fleet run emits: the usual load
// report (driven through a scoutgw gateway) plus the gateway's own
// resilience telemetry and the kill-test verdict. The run's contract is
// the fleet SLO: with a replica killed mid-run, every client request
// must still end in an orderly answer — success, a client error, or an
// honored 429 — never a transport failure or a 5xx.
type FleetReport struct {
	Report
	// KillPID / KillAfterSec describe the mid-run fault injection: the
	// process that was sent SIGTERM and when. Killed confirms the signal
	// was delivered.
	KillPID      int     `json:"kill_pid,omitempty"`
	KillAfterSec float64 `json:"kill_after_sec,omitempty"`
	Killed       bool    `json:"killed,omitempty"`
	// GatewayRetries/Hedges/HedgeWins/BreakerTrips are summed from the
	// gateway's final /metrics scrape — the server-side evidence of how
	// the fleet absorbed the fault (client-side Retries in the embedded
	// Report count 429 re-issues; these count the gateway's own
	// failovers).
	GatewayRetries int `json:"gateway_retries"`
	Hedges         int `json:"hedges"`
	HedgeWins      int `json:"hedge_wins"`
	BreakerTrips   int `json:"breaker_trips"`
	// GatewayMetrics is the final scrape, parsed (scout_gw_* series).
	GatewayMetrics map[string]float64 `json:"gateway_metrics,omitempty"`
	SLO            FleetSLOResult     `json:"slo"`
}

// FleetSLOResult is the kill-test verdict: zero failed non-shed
// requests, or the violations saying otherwise.
type FleetSLOResult struct {
	FailedNonShed int      `json:"failed_non_shed"`
	Pass          bool     `json:"pass"`
	Violations    []string `json:"violations,omitempty"`
}

// runFleet drives a scoutgw gateway with predict traffic, optionally
// SIGTERMs a replica process partway through, and judges the run against
// the zero-failed-non-shed SLO. team may be empty for single-team
// fleets (the gateway resolves it).
func runFleet(client *http.Client, baseURL, team string, conc int,
	duration time.Duration, killPID int, killAfter time.Duration, reqs []serving.PredictRequest) (FleetReport, error) {
	if len(reqs) == 0 {
		return FleetReport{}, fmt.Errorf("empty request corpus")
	}
	path := "/v1/predict"
	if team != "" {
		path += "?team=" + team
	}
	var payloads [][]byte
	for _, r := range reqs {
		b, err := json.Marshal(r)
		if err != nil {
			return FleetReport{}, err
		}
		payloads = append(payloads, b)
	}

	fr := FleetReport{KillPID: killPID, KillAfterSec: killAfter.Seconds()}
	killed := make(chan bool, 1)
	if killPID > 0 {
		go func() {
			time.Sleep(killAfter)
			killed <- syscall.Kill(killPID, syscall.SIGTERM) == nil
		}()
	} else {
		killed <- false
	}

	fr.Report = drive(client, baseURL, path, payloads, 1, conc, duration)
	fr.Mode = "fleet"
	fr.Killed = <-killed

	// The gateway's own telemetry is half the evidence: how many
	// failovers, hedges and breaker trips the fault cost the fleet.
	if m, err := scrapeMetrics(client, baseURL); err == nil {
		fr.GatewayMetrics = m
		fr.GatewayRetries = int(sumSeries(m, "scout_gw_retries_total"))
		fr.Hedges = int(sumSeries(m, "scout_gw_hedges_total"))
		fr.HedgeWins = int(sumSeries(m, "scout_gw_hedge_wins_total"))
		fr.BreakerTrips = int(sumSeries(m, "scout_gw_replica_breaker_trips_total"))
	}

	fr.SLO = judgeFleet(&fr)
	return fr, nil
}

// judgeFleet renders the kill-test verdict: transport errors and 5xx
// answers are failures; 200s, 4xx, and honored/shed 429s are not.
func judgeFleet(fr *FleetReport) FleetSLOResult {
	res := FleetSLOResult{FailedNonShed: fr.Errors}
	for code, n := range fr.StatusCounts {
		if strings.HasPrefix(code, "5") {
			res.FailedNonShed += n
		}
	}
	if res.FailedNonShed > 0 {
		res.Violations = append(res.Violations,
			fmt.Sprintf("%d request(s) failed outside the shed path", res.FailedNonShed))
	}
	if fr.Requests == 0 {
		res.Violations = append(res.Violations, "no requests completed")
	}
	if fr.KillPID > 0 && !fr.Killed {
		res.Violations = append(res.Violations,
			fmt.Sprintf("kill signal to pid %d was not delivered", fr.KillPID))
	}
	res.Pass = len(res.Violations) == 0
	return res
}

// sumSeries totals every sample of one metric family across its label
// sets (the per-replica series of a gateway counter).
func sumSeries(m map[string]float64, name string) float64 {
	total := 0.0
	for k, v := range m {
		if k == name || strings.HasPrefix(k, name+"{") {
			total += v
		}
	}
	return total
}
