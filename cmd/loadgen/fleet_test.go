package main

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"scouts/internal/gateway"
)

func TestRetryHint(t *testing.T) {
	h := http.Header{}
	if d := retryHint(h); d != time.Second {
		t.Fatalf("missing header hint = %v, want the 1s default", d)
	}
	h.Set("Retry-After", "2")
	if d := retryHint(h); d != 2*time.Second {
		t.Fatalf("Retry-After 2 hint = %v", d)
	}
	h.Set("Retry-After", "3600")
	if d := retryHint(h); d != 5*time.Second {
		t.Fatalf("hostile hint must cap at 5s, got %v", d)
	}
	h.Set("Retry-After", "garbage")
	if d := retryHint(h); d != time.Second {
		t.Fatalf("unparseable hint = %v, want the 1s default", d)
	}
}

// TestDriveHonors429 pins the loadgen side of the Retry-After contract:
// a 429 is slept out and re-issued (counted as a retry), not hammered
// and not counted as an error.
func TestDriveHonors429(t *testing.T) {
	var calls atomic.Int64
	var early atomic.Int64
	var firstAt atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		n := calls.Add(1)
		if n == 1 {
			firstAt.Store(time.Now().UnixNano())
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		// Any request landing well before the hint elapsed means the
		// client hammered instead of honoring the 429.
		if time.Since(time.Unix(0, firstAt.Load())) < 900*time.Millisecond {
			early.Add(1)
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	rep := drive(ts.Client(), ts.URL, "/v1/predict", [][]byte{[]byte(`{}`)}, 1, 1, 1500*time.Millisecond)
	if rep.Errors != 0 {
		t.Fatalf("a honored 429 must not count as an error: %+v", rep)
	}
	if rep.Retries < 1 {
		t.Fatalf("retries = %d, want the 429 re-issue counted", rep.Retries)
	}
	if early.Load() != 0 {
		t.Fatalf("%d request(s) fired before the Retry-After hint elapsed", early.Load())
	}
	if rep.StatusCounts["429"] != 1 {
		t.Fatalf("status counts missing the 429: %+v", rep.StatusCounts)
	}
}

// TestDriveShedsWhenDeadlineBeatsHint: a 429 whose hint does not fit in
// the remaining run is a shed, not a retry and not an error.
func TestDriveShedsWhenDeadlineBeatsHint(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Retry-After", "5")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer ts.Close()

	rep := drive(ts.Client(), ts.URL, "/v1/predict", [][]byte{[]byte(`{}`)}, 1, 1, 300*time.Millisecond)
	if rep.Shed == 0 {
		t.Fatalf("no sheds recorded against an always-429 server: %+v", rep)
	}
	if rep.Errors != 0 || rep.Retries != 0 {
		t.Fatalf("sheds misfiled as errors/retries: %+v", rep)
	}
}

func TestJudgeFleet(t *testing.T) {
	clean := FleetReport{Report: Report{Requests: 10, StatusCounts: map[string]int{"200": 10}}}
	if v := judgeFleet(&clean); !v.Pass || v.FailedNonShed != 0 {
		t.Fatalf("clean run judged %+v", v)
	}
	dirty := FleetReport{Report: Report{Requests: 10, Errors: 2, StatusCounts: map[string]int{"200": 7, "502": 1, "429": 2}}}
	v := judgeFleet(&dirty)
	if v.Pass || v.FailedNonShed != 3 {
		t.Fatalf("2 transport errors + one 502 judged %+v", v)
	}
	empty := FleetReport{}
	if v := judgeFleet(&empty); v.Pass {
		t.Fatal("zero-request run must not pass")
	}
	unkilled := FleetReport{Report: Report{Requests: 5, StatusCounts: map[string]int{"200": 5}}, KillPID: 12345}
	if v := judgeFleet(&unkilled); v.Pass {
		t.Fatal("undelivered kill signal must fail the verdict")
	}
}

func TestSumSeries(t *testing.T) {
	m := map[string]float64{
		`scout_gw_retries_total{replica="a"}`: 2,
		`scout_gw_retries_total{replica="b"}`: 3,
		"scout_gw_retries_total":              1, // unlabeled form
		`scout_gw_retries_total_other`:        99,
	}
	if got := sumSeries(m, "scout_gw_retries_total"); got != 6 {
		t.Fatalf("sumSeries = %v, want 6 (prefix must not match the _other family)", got)
	}
}

// TestLoadgenFleet drives the -fleet mode end to end against a real
// gateway in front of a real trained replica: the report carries the
// gateway's scout_gw_* telemetry and the zero-failed-non-shed verdict.
func TestLoadgenFleet(t *testing.T) {
	ts := newTestServer(t)
	g, err := gateway.New(gateway.Config{
		Replicas: []gateway.ReplicaConfig{{Name: "r0", Team: "phynet", URL: ts.URL}},
	})
	if err != nil {
		t.Fatal(err)
	}
	gw := httptest.NewServer(g.Handler())
	defer gw.Close()

	reqs := corpus(5, 30, 6)
	fr, err := runFleet(gw.Client(), gw.URL, "", 4, 500*time.Millisecond, 0, 0, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Mode != "fleet" {
		t.Fatalf("mode = %q", fr.Mode)
	}
	if fr.Requests == 0 {
		t.Fatal("fleet run drove no traffic")
	}
	if !fr.SLO.Pass || fr.SLO.FailedNonShed != 0 {
		t.Fatalf("healthy fleet failed the SLO: %+v", fr.SLO)
	}
	if len(fr.GatewayMetrics) == 0 {
		t.Fatal("final scrape missing gateway metrics")
	}
	if _, ok := fr.GatewayMetrics[`scout_gw_upstream_requests_total{outcome="ok",replica="r0"}`]; !ok {
		if _, ok := fr.GatewayMetrics[`scout_gw_upstream_requests_total{replica="r0",outcome="ok"}`]; !ok {
			t.Fatalf("scrape has no per-replica upstream series; keys: %v", metricNames(fr.GatewayMetrics))
		}
	}
}
