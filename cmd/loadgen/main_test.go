package main

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"scouts/internal/cloudsim"
	"scouts/internal/core"
	"scouts/internal/serving"
)

// newTestServer trains a model on the seed-5 corpus world and serves it
// from an in-process httptest server.
func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	gen := cloudsim.New(cloudsim.Params{Seed: 5, Days: 30, IncidentsPerDay: 6})
	trace := gen.Generate()
	cfg, err := core.ParseConfig(core.DefaultPhyNetConfig)
	if err != nil {
		t.Fatal(err)
	}
	store := serving.NewStore()
	tr := &serving.Trainer{Store: store}
	if _, _, err := tr.TrainAndPublish(core.TrainOptions{
		Config: cfg, Topology: gen.Topology(), Source: gen.Telemetry(),
		Incidents: trace.Incidents, Seed: 1,
	}); err != nil {
		t.Fatal(err)
	}
	srv := serving.NewServer(gen.Topology(), gen.Telemetry(), store, nil)
	if err := srv.Reload(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestLoadgenSmoke drives runLoad — the whole tool minus flag parsing —
// against an in-process httptest server in both modes. This is the `make
// ci` smoke: it proves the generator's request encoding, both endpoints
// and the report math still fit together, without timing anything.
func TestLoadgenSmoke(t *testing.T) {
	ts := newTestServer(t)
	reqs := corpus(5, 30, 6)
	if len(reqs) == 0 {
		t.Fatal("empty corpus")
	}
	for _, mode := range []string{"single", "batch"} {
		rep, err := runLoad(ts.Client(), ts.URL, mode, 8, 2, 300*time.Millisecond, reqs)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if rep.Errors != 0 {
			t.Fatalf("%s: %d request errors", mode, rep.Errors)
		}
		if rep.Requests == 0 || rep.QPS <= 0 {
			t.Fatalf("%s: no throughput recorded: %+v", mode, rep)
		}
		if rep.P50Ms <= 0 || rep.P99Ms < rep.P50Ms {
			t.Fatalf("%s: implausible latency summary: %+v", mode, rep)
		}
		if mode == "batch" && rep.Predictions != rep.Requests*8 {
			t.Fatalf("batch: predictions=%d requests=%d", rep.Predictions, rep.Requests)
		}
		if _, err := json.Marshal(rep); err != nil {
			t.Fatalf("%s: report not JSON-encodable: %v", mode, err)
		}
	}

	if _, err := runLoad(ts.Client(), ts.URL, "bogus", 8, 1, time.Millisecond, reqs); err == nil {
		t.Fatal("unknown mode should error")
	}
}

// TestLoadgenChaos is the `make ci` chaos smoke: adversarial traffic —
// malformed JSON, 2 MiB bodies, mid-body disconnects — must come back as
// orderly 2xx/4xx answers or client-side aborts. A single 5xx means a
// handler crashed or leaked an internal error; that fails the build.
func TestLoadgenChaos(t *testing.T) {
	ts := newTestServer(t)
	reqs := corpus(5, 30, 6)
	rep, err := runChaos(ts.Client(), ts.URL, 2, 400*time.Millisecond, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 || rep.ChaosRequests == 0 || rep.Disconnects == 0 {
		t.Fatalf("chaos run too quiet: %+v", rep)
	}
	if rep.StatusCounts["200"] == 0 {
		t.Fatalf("valid requests stopped succeeding under chaos: %+v", rep.StatusCounts)
	}
	if rep.ChaosStatusCounts["400"] == 0 && rep.ChaosStatusCounts["413"] == 0 {
		t.Fatalf("malformed/oversized requests were not rejected: %+v", rep.ChaosStatusCounts)
	}
	// The accounting split: adversarial responses must not leak into the
	// control-group numbers. The rotation sends non-disconnect chaos
	// traffic only to 4xx-producing cases, so any 400/413 in the control
	// histogram — or any 200 among the chaos statuses — is a misfile.
	if rep.StatusCounts["400"] != 0 || rep.StatusCounts["413"] != 0 {
		t.Fatalf("adversarial rejections leaked into StatusCounts: %+v", rep.StatusCounts)
	}
	if rep.ChaosStatusCounts["200"] != 0 {
		t.Fatalf("well-formed responses leaked into ChaosStatusCounts: %+v", rep.ChaosStatusCounts)
	}
	// Latency and QPS describe only the control group: every latency
	// sample came from a 200 and Requests counts control traffic alone.
	if rep.Predictions != rep.StatusCounts["200"] {
		t.Fatalf("latency samples (%d) != control 200s (%d)", rep.Predictions, rep.StatusCounts["200"])
	}
	wantReqs := 0
	for _, n := range rep.StatusCounts {
		wantReqs += n
	}
	if rep.Requests != wantReqs {
		t.Fatalf("Requests=%d, want sum of control statuses %d", rep.Requests, wantReqs)
	}
	for _, counts := range []map[string]int{rep.StatusCounts, rep.ChaosStatusCounts} {
		for code, n := range counts {
			if n > 0 && code >= "500" && code <= "599" {
				t.Fatalf("unexpected server error %s (%d of them): %+v", code, n, counts)
			}
		}
	}
	if rep.Errors != 0 {
		t.Fatalf("%d unexpected transport errors (disconnects are tracked separately)", rep.Errors)
	}
	out, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("report not JSON-encodable: %v", err)
	}
	if !json.Valid(out) {
		t.Fatal("report JSON invalid")
	}
}

// TestLoadgenSoak is the `make ci` soak smoke: a ~2s sustained run
// against an in-process server with sub-second /metrics scrapes. It
// proves the scrape parser understands the server's exposition, the
// server-side counters land in the report, and the SLO verdict math
// fires in both directions.
func TestLoadgenSoak(t *testing.T) {
	ts := newTestServer(t)
	reqs := corpus(5, 30, 6)
	slo := SLO{P99Ms: 60_000, MaxErrorRate: 0.01} // generous: the smoke tests plumbing, not speed
	sr, err := runSoak(ts.Client(), ts.URL, "single", 0, 2, 1500*time.Millisecond, 200*time.Millisecond, slo, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Mode != "soak-single" {
		t.Fatalf("mode = %q", sr.Mode)
	}
	if sr.Requests == 0 || sr.Errors != 0 {
		t.Fatalf("soak drove no clean traffic: %+v", sr.Report)
	}
	if sr.Scrapes < 3 {
		t.Fatalf("only %d scrapes in a 1.5s run at 200ms", sr.Scrapes)
	}
	if sr.ScrapeErrors != 0 {
		t.Fatalf("%d scrape errors", sr.ScrapeErrors)
	}
	// The final scrape must carry the server's view of the run, and the
	// server must have counted at least as many predict requests as the
	// client got answers for (the server also sees the scrape traffic).
	served := sr.Metrics[`scout_http_requests_total{code="200",endpoint="/v1/predict"}`]
	if int(served) < sr.Requests {
		t.Fatalf("server counted %.0f predict 200s, client saw %d", served, sr.Requests)
	}
	for _, want := range []string{
		"scout_model_version",
		"scout_http_panics_recovered_total",
		`scout_http_request_duration_seconds_count{endpoint="/v1/predict"}`,
	} {
		if _, ok := sr.Metrics[want]; !ok {
			t.Fatalf("final scrape missing %q; have %v", want, metricNames(sr.Metrics))
		}
	}
	if sr.Metrics[`scout_http_request_duration_seconds_count{endpoint="/v1/predict"}`] < served {
		t.Fatal("latency histogram undercounts the predict endpoint")
	}
	if !sr.SLO.Pass || len(sr.SLO.Violations) != 0 {
		t.Fatalf("soak verdict failed: %+v", sr.SLO)
	}
	if sr.SLO.ErrorRate != 0 {
		t.Fatalf("error rate %.4f, want 0", sr.SLO.ErrorRate)
	}
	if _, err := json.Marshal(sr); err != nil {
		t.Fatalf("report not JSON-encodable: %v", err)
	}

	// The verdict must also fail honestly: an impossible latency SLO
	// flips Pass off and names the violation.
	strict := judge(SLO{P99Ms: 0.000001, MaxErrorRate: 0}, &sr)
	if strict.Pass || len(strict.Violations) == 0 {
		t.Fatalf("impossible SLO passed: %+v", strict)
	}
}

// TestParseProm pins the scrape parser against a hand-built exposition.
func TestParseProm(t *testing.T) {
	m, err := parseProm(`# HELP x y
# TYPE x counter
x 3
scout_d_bucket{endpoint="/p",le="0.1"} 4
scout_d_sum{endpoint="/p"} 1.5
scout_d_count{endpoint="/p"} 4
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 3 {
		t.Fatalf("parsed %d series, want 3 (buckets dropped): %v", len(m), metricNames(m))
	}
	if m["x"] != 3 || m[`scout_d_sum{endpoint="/p"}`] != 1.5 {
		t.Fatalf("bad values: %v", m)
	}
	if _, err := parseProm("not a metric line"); err == nil {
		t.Fatal("garbage should not parse")
	}
	if _, err := parseProm("# only comments\n"); err == nil {
		t.Fatal("empty payload should error")
	}
}
