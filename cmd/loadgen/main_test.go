package main

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"scouts/internal/cloudsim"
	"scouts/internal/core"
	"scouts/internal/serving"
)

// newTestServer trains a model on the seed-5 corpus world and serves it
// from an in-process httptest server.
func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	gen := cloudsim.New(cloudsim.Params{Seed: 5, Days: 30, IncidentsPerDay: 6})
	trace := gen.Generate()
	cfg, err := core.ParseConfig(core.DefaultPhyNetConfig)
	if err != nil {
		t.Fatal(err)
	}
	store := serving.NewStore()
	tr := &serving.Trainer{Store: store}
	if _, _, err := tr.TrainAndPublish(core.TrainOptions{
		Config: cfg, Topology: gen.Topology(), Source: gen.Telemetry(),
		Incidents: trace.Incidents, Seed: 1,
	}); err != nil {
		t.Fatal(err)
	}
	srv := serving.NewServer(gen.Topology(), gen.Telemetry(), store, nil)
	if err := srv.Reload(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestLoadgenSmoke drives runLoad — the whole tool minus flag parsing —
// against an in-process httptest server in both modes. This is the `make
// ci` smoke: it proves the generator's request encoding, both endpoints
// and the report math still fit together, without timing anything.
func TestLoadgenSmoke(t *testing.T) {
	ts := newTestServer(t)
	reqs := corpus(5, 30, 6)
	if len(reqs) == 0 {
		t.Fatal("empty corpus")
	}
	for _, mode := range []string{"single", "batch"} {
		rep, err := runLoad(ts.Client(), ts.URL, mode, 8, 2, 300*time.Millisecond, reqs)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if rep.Errors != 0 {
			t.Fatalf("%s: %d request errors", mode, rep.Errors)
		}
		if rep.Requests == 0 || rep.QPS <= 0 {
			t.Fatalf("%s: no throughput recorded: %+v", mode, rep)
		}
		if rep.P50Ms <= 0 || rep.P99Ms < rep.P50Ms {
			t.Fatalf("%s: implausible latency summary: %+v", mode, rep)
		}
		if mode == "batch" && rep.Predictions != rep.Requests*8 {
			t.Fatalf("batch: predictions=%d requests=%d", rep.Predictions, rep.Requests)
		}
		if _, err := json.Marshal(rep); err != nil {
			t.Fatalf("%s: report not JSON-encodable: %v", mode, err)
		}
	}

	if _, err := runLoad(ts.Client(), ts.URL, "bogus", 8, 1, time.Millisecond, reqs); err == nil {
		t.Fatal("unknown mode should error")
	}
}

// TestLoadgenChaos is the `make ci` chaos smoke: adversarial traffic —
// malformed JSON, 2 MiB bodies, mid-body disconnects — must come back as
// orderly 2xx/4xx answers or client-side aborts. A single 5xx means a
// handler crashed or leaked an internal error; that fails the build.
func TestLoadgenChaos(t *testing.T) {
	ts := newTestServer(t)
	reqs := corpus(5, 30, 6)
	rep, err := runChaos(ts.Client(), ts.URL, 2, 400*time.Millisecond, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 || rep.Disconnects == 0 {
		t.Fatalf("chaos run too quiet: %+v", rep)
	}
	if rep.StatusCounts["200"] == 0 {
		t.Fatalf("valid requests stopped succeeding under chaos: %+v", rep.StatusCounts)
	}
	if rep.StatusCounts["400"] == 0 && rep.StatusCounts["413"] == 0 {
		t.Fatalf("malformed/oversized requests were not rejected: %+v", rep.StatusCounts)
	}
	for code, n := range rep.StatusCounts {
		if n > 0 && code >= "500" && code <= "599" {
			t.Fatalf("unexpected server error %s (%d of them): %+v", code, n, rep.StatusCounts)
		}
	}
	if rep.Errors != 0 {
		t.Fatalf("%d unexpected transport errors (disconnects are tracked separately)", rep.Errors)
	}
	out, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("report not JSON-encodable: %v", err)
	}
	if !json.Valid(out) {
		t.Fatal("report JSON invalid")
	}
}
